"""Alert rules, the incident lifecycle, the health monitor, and wiring.

Covers the PR's alerting layer end to end:

* rule-file parsing — stdlib TOML and the 3.9/3.10 fallback subset
  parser, validation errors, per-kind defaults;
* :class:`~repro.obs.alerts.AlertEngine` — every rule kind, ``for_s``
  debounce, firing→resolved lifecycle, no-data semantics, provenance;
* :class:`~repro.obs.health.HealthMonitor` — ticking, listeners, the
  process-global install the engine fold loops use;
* the serve daemon — ``/alertz``, page-severity ``/readyz``
  degradation, and ``serve.alert`` ledger entries, driven through real
  HTTP against an injected rule file;
* the ``repro alerts`` / ``repro watch`` CLI.
"""

import json
import threading
import time
import urllib.request
from types import SimpleNamespace

import pytest

import repro.obs.alerts as alerts_mod
from repro.cli import main
from repro.obs.alerts import (
    AlertConfigError,
    AlertEngine,
    AlertRule,
    load_rules,
    parse_rules,
    render_incidents,
    _parse_minitoml,
)
from repro.obs.health import (
    HealthMonitor,
    build_monitor,
    get_monitor,
    maybe_tick,
    set_monitor,
)
from repro.obs.ledger import Ledger
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import Timeline
from repro.serve.server import DetectionServer, ServeConfig
from tests.test_serve import get, post

RULES_TOML = """
# fleet alert rules
[[rule]]
name = "error-burn"
kind = "burn_rate"
metric = "serve.requests.total"
labels.status = "500"
denominator = "serve.requests.total"
objective = 0.99
threshold = 2.0
window_s = 60
long_window_s = 300
severity = "page"

[[rule]]
name = "drift"
kind = "drift_psi"
threshold = 0.25
window_s = 120

[[rule]]
name = "quarantine"
kind = "quarantine_budget"
budget = 0.05
window_s = 600
for_s = 30
"""


@pytest.fixture(autouse=True)
def _no_global_monitor():
    """Tests must not leak a process-global monitor into each other."""
    set_monitor(None)
    yield
    set_monitor(None)


# -- TOML parsing ---------------------------------------------------------------


class TestMiniToml:
    def test_parses_the_rule_file_subset(self):
        data = _parse_minitoml(RULES_TOML)
        rules = data["rule"]
        assert len(rules) == 3
        assert rules[0]["name"] == "error-burn"
        assert rules[0]["labels"] == {"status": "500"}
        assert rules[0]["objective"] == 0.99
        assert rules[0]["window_s"] == 60
        assert rules[2]["for_s"] == 30

    def test_scalar_types(self):
        data = _parse_minitoml(
            's = "text"\nq = \'raw\'\nb = true\nn = 7\nf = 1.5\n'
            "c = 3 # trailing comment\n"
        )
        assert data == {
            "s": "text", "q": "raw", "b": True, "n": 7, "f": 1.5, "c": 3,
        }

    def test_plain_table_header(self):
        data = _parse_minitoml("[meta]\nowner = \"sre\"\n")
        assert data == {"meta": {"owner": "sre"}}

    def test_malformed_header_rejected(self):
        with pytest.raises(AlertConfigError, match="line 1"):
            _parse_minitoml("[[rule\n")

    def test_missing_equals_rejected(self):
        with pytest.raises(AlertConfigError, match="key = value"):
            _parse_minitoml("[[rule]]\nname\n")

    def test_unparseable_scalar_rejected(self):
        with pytest.raises(AlertConfigError, match="cannot parse"):
            _parse_minitoml("x = [1, 2]\n")

    def test_fallback_parses_same_rules_as_stdlib(self, monkeypatch):
        with_stdlib = parse_rules(RULES_TOML)
        monkeypatch.setattr(alerts_mod, "_tomllib", None)
        with_fallback = parse_rules(RULES_TOML)
        assert [r.to_dict() for r in with_fallback] == [
            r.to_dict() for r in with_stdlib
        ]


class TestRuleParsing:
    def test_valid_file_round_trips(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text(RULES_TOML)
        rules = load_rules(path)
        assert [r.name for r in rules] == ["error-burn", "drift", "quarantine"]
        assert rules[0].severity == "page"

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(AlertConfigError, match="not found"):
            load_rules(tmp_path / "absent.toml")

    def test_duplicate_names_rejected(self):
        text = RULES_TOML + "\n[[rule]]\nname = \"drift\"\nkind = \"drift_psi\"\n"
        with pytest.raises(AlertConfigError, match="duplicate rule name"):
            parse_rules(text)

    def test_unknown_keys_rejected(self):
        with pytest.raises(AlertConfigError, match="unknown keys"):
            parse_rules(
                '[[rule]]\nname = "x"\nkind = "drift_psi"\nfoo = 1\n'
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(AlertConfigError, match="unknown kind"):
            parse_rules('[[rule]]\nname = "x"\nkind = "nope"\n')

    def test_threshold_requires_metric(self):
        with pytest.raises(AlertConfigError, match="requires 'metric'"):
            parse_rules('[[rule]]\nname = "x"\nkind = "threshold"\n')

    def test_burn_rate_validation(self):
        base = ('[[rule]]\nname = "x"\nkind = "burn_rate"\n'
                'metric = "m"\ndenominator = "d"\n')
        with pytest.raises(AlertConfigError, match="objective"):
            parse_rules(base + "objective = 1.5\nlong_window_s = 300\n")
        with pytest.raises(AlertConfigError, match="long_window_s"):
            parse_rules(base + "objective = 0.9\nlong_window_s = 10\n")
        with pytest.raises(AlertConfigError, match="denominator"):
            parse_rules(
                '[[rule]]\nname = "x"\nkind = "burn_rate"\nmetric = "m"\n'
                "objective = 0.9\nlong_window_s = 300\n"
            )

    def test_quarantine_budget_bounds(self):
        with pytest.raises(AlertConfigError, match="budget"):
            parse_rules(
                '[[rule]]\nname = "x"\nkind = "quarantine_budget"\n'
                "budget = 0.0\n"
            )

    def test_bad_severity_and_op(self):
        with pytest.raises(AlertConfigError, match="severity"):
            parse_rules(
                '[[rule]]\nname = "x"\nkind = "drift_psi"\n'
                'severity = "critical"\n'
            )
        with pytest.raises(AlertConfigError, match="op"):
            parse_rules(
                '[[rule]]\nname = "x"\nkind = "drift_psi"\nop = ">="\n'
            )

    def test_kind_defaults(self):
        rules = parse_rules(
            '[[rule]]\nname = "q"\nkind = "quarantine_budget"\nbudget = 0.1\n'
            '[[rule]]\nname = "d"\nkind = "drift_psi"\n'
            '[[rule]]\nname = "r"\nkind = "rate_of_change"\nmetric = "g"\n'
        )
        quarantine, drift, rate = rules
        assert quarantine.metric == "quarantine.images.total"
        assert quarantine.denominator == "assemble.systems.total"
        assert drift.metric == "drift.psi.max"
        assert rate.stat == "rate"


# -- engine ---------------------------------------------------------------------


def gauge_rule(**overrides):
    kw = dict(name="g-high", kind="threshold", metric="g", stat="value",
              threshold=3.0, window_s=60.0)
    kw.update(overrides)
    rule = AlertRule(**kw)
    rule.validate()
    return rule


class TestAlertEngineLifecycle:
    def test_fire_then_resolve(self):
        engine = AlertEngine([gauge_rule()])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 5.0, t=10.0)
        transitions = engine.evaluate(timeline, now=10.0)
        assert [event for event, _ in transitions] == ["fired"]
        incident = transitions[0][1]
        assert incident.state == "firing"
        assert incident.value == 5.0 and incident.threshold == 3.0
        assert incident.series == "g"
        assert engine.firing_incidents() == [incident]

        timeline.record_gauge("g", {}, 1.0, t=20.0)
        transitions = engine.evaluate(timeline, now=20.0)
        assert [event for event, _ in transitions] == ["resolved"]
        resolved = transitions[0][1]
        assert resolved.state == "resolved"
        assert resolved.resolved_at == 20.0
        assert "resolution" in resolved.window
        assert engine.firing == {}
        assert engine.resolved == [resolved]

    def test_for_s_debounces(self):
        engine = AlertEngine([gauge_rule(for_s=10.0)])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 5.0, t=0.0)
        assert engine.evaluate(timeline, now=0.0) == []   # pending
        assert engine.evaluate(timeline, now=5.0) == []   # still pending
        transitions = engine.evaluate(timeline, now=10.0)
        assert [event for event, _ in transitions] == ["fired"]
        assert transitions[0][1].started_at == 0.0
        assert transitions[0][1].fired_at == 10.0

    def test_for_s_resets_when_condition_drops(self):
        engine = AlertEngine([gauge_rule(for_s=10.0)])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 5.0, t=0.0)
        engine.evaluate(timeline, now=0.0)
        timeline.record_gauge("g", {}, 1.0, t=5.0)   # dips below
        engine.evaluate(timeline, now=5.0)
        timeline.record_gauge("g", {}, 5.0, t=8.0)   # breaches again
        engine.evaluate(timeline, now=8.0)
        # 10s after the FIRST breach, but only 4s after the second:
        assert engine.evaluate(timeline, now=12.0) == []
        transitions = engine.evaluate(timeline, now=18.0)
        assert [event for event, _ in transitions] == ["fired"]

    def test_no_data_is_not_breaching(self):
        engine = AlertEngine([gauge_rule(metric="absent")])
        assert engine.evaluate(Timeline(), now=1.0) == []
        assert engine.firing == {}

    def test_open_incident_refreshes_value(self):
        engine = AlertEngine([gauge_rule()])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 5.0, t=0.0)
        engine.evaluate(timeline, now=0.0)
        timeline.record_gauge("g", {}, 9.0, t=10.0)
        assert engine.evaluate(timeline, now=10.0) == []  # still the same incident
        assert engine.firing["g-high"].value == 9.0

    def test_less_than_op(self):
        rule = gauge_rule(name="g-low", op="<", threshold=2.0)
        engine = AlertEngine([rule])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 1.0, t=0.0)
        transitions = engine.evaluate(timeline, now=0.0)
        assert [event for event, _ in transitions] == ["fired"]

    def test_resolved_history_is_bounded(self):
        engine = AlertEngine([gauge_rule()])
        timeline = Timeline(capacity=2)
        for i in range(AlertEngine.RESOLVED_HISTORY + 10):
            t = float(i * 2)
            timeline.record_gauge("g", {}, 5.0, t=t)
            engine.evaluate(timeline, now=t)
            timeline.record_gauge("g", {}, 1.0, t=t + 1)
            engine.evaluate(timeline, now=t + 1)
        assert len(engine.resolved) == AlertEngine.RESOLVED_HISTORY

    def test_snapshot_shape(self):
        engine = AlertEngine([gauge_rule()])
        timeline = Timeline()
        timeline.record_gauge("g", {}, 5.0, t=0.0)
        engine.evaluate(timeline, now=0.0)
        snapshot = engine.snapshot()
        assert snapshot["evaluations"] == 1
        assert snapshot["rules"][0]["name"] == "g-high"
        assert snapshot["firing"][0]["rule"] == "g-high"
        json.dumps(snapshot)  # must be JSON-clean


def _counter_points(timeline, name, labels, points):
    for t, value in points:
        timeline.record_counter(name, labels, value, t=t)


class TestRuleKinds:
    def test_threshold_delta_on_counter(self):
        rule = AlertRule(name="err", kind="threshold", metric="errs",
                         stat="delta", threshold=5.0, window_s=60.0)
        rule.validate()
        engine = AlertEngine([rule])
        timeline = Timeline()
        _counter_points(timeline, "errs", {}, [(0.0, 0.0), (30.0, 10.0)])
        transitions = engine.evaluate(timeline, now=30.0)
        assert [event for event, _ in transitions] == ["fired"]
        assert transitions[0][1].value == 10.0

    def test_rate_of_change_on_gauge(self):
        rule = AlertRule(name="rss-climb", kind="rate_of_change",
                         metric="rss", stat="change", threshold=5.0,
                         window_s=60.0)
        rule.validate()
        engine = AlertEngine([rule])
        timeline = Timeline()
        timeline.record_gauge("rss", {}, 100.0, t=0.0)
        timeline.record_gauge("rss", {}, 200.0, t=10.0)  # +10/s
        transitions = engine.evaluate(timeline, now=10.0)
        assert [event for event, _ in transitions] == ["fired"]
        assert transitions[0][1].value == pytest.approx(10.0)

    def test_burn_rate_fires_when_both_windows_breach(self):
        rule = AlertRule(name="burn", kind="burn_rate",
                         metric="errs", denominator="total",
                         objective=0.9, threshold=2.0,
                         window_s=60.0, long_window_s=300.0)
        rule.validate()
        engine = AlertEngine([rule])
        timeline = Timeline()
        # 30% errors throughout: burn = 0.3 / 0.1 = 3 in both windows.
        _counter_points(timeline, "errs", {},
                        [(0.0, 0.0), (240.0, 72.0), (300.0, 90.0)])
        _counter_points(timeline, "total", {},
                        [(0.0, 0.0), (240.0, 240.0), (300.0, 300.0)])
        transitions = engine.evaluate(timeline, now=300.0)
        assert [event for event, _ in transitions] == ["fired"]
        incident = transitions[0][1]
        assert incident.value == pytest.approx(3.0)
        assert incident.window["short_burn"] == pytest.approx(3.0)
        assert incident.window["long_burn"] == pytest.approx(3.0)

    def test_burn_rate_short_only_burst_does_not_fire(self):
        rule = AlertRule(name="burn", kind="burn_rate",
                         metric="errs", denominator="total",
                         objective=0.9, threshold=2.0,
                         window_s=60.0, long_window_s=300.0)
        rule.validate()
        engine = AlertEngine([rule])
        timeline = Timeline()
        # Errors only in the last minute: short burn 3, long burn 0.6.
        _counter_points(timeline, "errs", {},
                        [(0.0, 0.0), (240.0, 0.0), (300.0, 30.0)])
        _counter_points(timeline, "total", {},
                        [(0.0, 0.0), (240.0, 400.0), (300.0, 500.0)])
        assert engine.evaluate(timeline, now=300.0) == []

    def test_burn_rate_no_traffic_is_no_data(self):
        rule = AlertRule(name="burn", kind="burn_rate",
                         metric="errs", denominator="total",
                         objective=0.9, threshold=2.0,
                         window_s=60.0, long_window_s=300.0)
        rule.validate()
        engine = AlertEngine([rule])
        assert engine.evaluate(Timeline(), now=300.0) == []

    def test_drift_psi_defaults(self):
        rules = parse_rules(
            '[[rule]]\nname = "drift"\nkind = "drift_psi"\nthreshold = 0.25\n'
        )
        engine = AlertEngine(rules)
        timeline = Timeline()
        timeline.record_gauge("drift.psi.max", {}, 0.4, t=1.0)
        transitions = engine.evaluate(timeline, now=1.0)
        assert [event for event, _ in transitions] == ["fired"]

    def test_quarantine_budget_ratio(self):
        rules = parse_rules(
            '[[rule]]\nname = "q"\nkind = "quarantine_budget"\n'
            "budget = 0.05\nwindow_s = 600\n"
        )
        engine = AlertEngine(rules)
        timeline = Timeline()
        _counter_points(timeline, "quarantine.images.total", {},
                        [(0.0, 0.0), (300.0, 5.0)])
        _counter_points(timeline, "assemble.systems.total", {},
                        [(0.0, 0.0), (300.0, 45.0)])
        transitions = engine.evaluate(timeline, now=300.0)
        assert [event for event, _ in transitions] == ["fired"]
        incident = transitions[0][1]
        assert incident.value == pytest.approx(0.1)   # 5 / (5 + 45)
        assert incident.threshold == 0.05


class TestRenderIncidents:
    def test_text_and_json(self):
        incidents = [{
            "rule": "burn", "kind": "burn_rate", "severity": "page",
            "series": "errs", "state": "resolved",
            "started_at": 0.0, "fired_at": 10.0, "resolved_at": 70.0,
            "value": 3.0, "threshold": 2.0,
        }]
        text = render_incidents(incidents)
        assert "[page] burn (burn_rate) resolved" in text
        assert "after 60.0s" in text
        assert json.loads(render_incidents(incidents, json_output=True))
        assert render_incidents([]) == "no incidents"


# -- health monitor -------------------------------------------------------------


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestHealthMonitor:
    def test_tick_samples_and_publishes_meta_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        clock = FakeClock(100.0)
        monitor = HealthMonitor(rules=[gauge_rule()], interval_s=5.0,
                                registry=registry, clock=clock)
        transitions = monitor.tick()
        assert [event for event, _ in transitions] == ["fired"]
        assert registry.value("alerts.rules") == 1
        assert registry.value("alerts.firing") == 1
        assert monitor.firing()[0].rule == "g-high"
        assert monitor.firing(severity="page") == []

    def test_maybe_tick_respects_interval(self):
        registry = MetricsRegistry()
        clock = FakeClock(100.0)
        monitor = HealthMonitor(interval_s=5.0, registry=registry, clock=clock)
        assert monitor.maybe_tick() is True
        clock.t = 101.0
        assert monitor.maybe_tick() is False
        clock.t = 106.0
        assert monitor.maybe_tick() is True
        assert monitor.timeline.samples == 2

    def test_listener_gets_transitions_and_errors_are_contained(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        monitor = HealthMonitor(rules=[gauge_rule()], registry=registry,
                                clock=FakeClock(1.0))
        seen = []
        monitor.on_transition(lambda event, inc: seen.append((event, inc.rule)))
        monitor.on_transition(
            lambda event, inc: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        monitor.tick()  # must not raise despite the failing listener
        assert seen == [("fired", "g-high")]

    def test_snapshot_includes_timeline_stats(self):
        monitor = HealthMonitor(registry=MetricsRegistry(),
                                clock=FakeClock(1.0))
        monitor.tick()
        snapshot = monitor.snapshot()
        assert snapshot["timeline"]["samples"] == 1
        assert snapshot["interval_s"] == 5.0
        json.dumps(snapshot)

    def test_background_thread_ticks(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(interval_s=0.02, registry=registry)
        monitor.start(name="test-health")
        try:
            deadline = time.time() + 5.0
            while monitor.timeline.samples < 2 and time.time() < deadline:
                time.sleep(0.02)
        finally:
            monitor.stop()
        assert monitor.timeline.samples >= 2

    def test_global_install_and_module_maybe_tick(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        clock = FakeClock(100.0)
        monitor = HealthMonitor(rules=[gauge_rule()], interval_s=5.0,
                                registry=registry, clock=clock)
        assert maybe_tick() is False          # nothing installed: no-op
        set_monitor(monitor)
        assert get_monitor() is monitor
        assert maybe_tick() is True
        assert maybe_tick() is False          # within the interval
        assert monitor.engine.firing
        set_monitor(None)
        assert maybe_tick() is False

    def test_build_monitor_loads_rules(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text(RULES_TOML)
        monitor = build_monitor(rules_path=path, interval_s=1.0)
        assert [r.name for r in monitor.engine.rules] == [
            "error-burn", "drift", "quarantine",
        ]
        assert build_monitor().engine.rules == []


# -- serve integration ----------------------------------------------------------


SERVE_RULES = """
[[rule]]
name = "bad-requests"
kind = "threshold"
metric = "serve.requests.total"
labels.status = "400"
stat = "delta"
threshold = 0.0
window_s = 60
severity = "page"
"""


@pytest.fixture()
def alert_serve_ctx(tmp_path, trained_encore):
    """A daemon with an injected page-severity rule (monitor not threaded).

    ``boot`` never calls ``start_watcher``, so the monitor only ticks
    when the test says so — transitions are fully deterministic.
    """
    snapshot = tmp_path / "model.json"
    trained_encore.save_model(snapshot)
    rules_path = tmp_path / "alerts.toml"
    rules_path.write_text(SERVE_RULES)
    config = ServeConfig(
        snapshot=snapshot,
        port=0,
        alerts_path=rules_path,
        alerts_interval_s=0.1,
        ledger_path=tmp_path / "ledger.jsonl",
    )
    server = DetectionServer(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    ctx = SimpleNamespace(
        server=server,
        base=f"http://127.0.0.1:{server.server_port}",
        ledger_path=tmp_path / "ledger.jsonl",
    )
    yield ctx
    server.stop()
    server.server_close()


class TestServeAlerting:
    def test_full_incident_lifecycle_over_http(self, alert_serve_ctx, capsys):
        server, base = alert_serve_ctx.server, alert_serve_ctx.base
        t0 = time.time()

        # Healthy daemon: rules loaded, nothing firing, ready.
        status, text = get(base, "/alertz")
        assert status == 200
        payload = json.loads(text)
        assert [r["name"] for r in payload["rules"]] == ["bad-requests"]
        assert payload["firing"] == []
        assert get(base, "/readyz")[0] == 200

        # Error burst: two invalid POSTs (400s), sampled across ticks so
        # the 60 s window sees the counter increase.
        server.monitor.tick(now=t0)
        assert post(base, "/v1/check", {"nope": 1})[0] == 400
        server.monitor.tick(now=t0 + 1)
        assert post(base, "/v1/check", {"nope": 2})[0] == 400
        transitions = server.monitor.tick(now=t0 + 2)
        assert ("fired", transitions[0][1])[0] == "fired"

        # /alertz reports the incident; /statusz summarises it.
        payload = json.loads(get(base, "/alertz")[1])
        assert [i["rule"] for i in payload["firing"]] == ["bad-requests"]
        assert payload["firing"][0]["severity"] == "page"
        statusz = json.loads(get(base, "/statusz")[1])
        assert statusz["alerts"]["firing"] == 1
        assert statusz["alerts"]["rules"] == 1

        # A page-severity incident degrades readiness (but not liveness).
        status, text = get(base, "/readyz")
        assert status == 503
        body = json.loads(text)
        assert body["status"] == "degraded"
        assert body["incidents"] == ["bad-requests"]
        assert get(base, "/healthz")[0] == 200

        # The burst scrolls out of the window: the incident resolves and
        # readiness recovers.
        transitions = server.monitor.tick(now=t0 + 200)
        assert [event for event, _ in transitions] == ["resolved"]
        assert get(base, "/readyz")[0] == 200
        payload = json.loads(get(base, "/alertz")[1])
        assert payload["firing"] == []
        assert [i["rule"] for i in payload["resolved"]] == ["bad-requests"]

        # Both transitions landed in the run ledger with provenance.
        entries = [e for e in Ledger(alert_serve_ctx.ledger_path).entries()
                   if e.command == "serve.alert"]
        assert [e.request["event"] for e in entries] == ["fired", "resolved"]
        assert all(e.incidents for e in entries)
        assert entries[1].incidents[0]["state"] == "resolved"

        # The transition counter rode along in the metrics.
        status, text = get(base, "/metrics")
        assert 'serve_alert_transitions_total{event="fired"} 1' in text

        # ...and `repro alerts show` renders them.  (Last: an in-process
        # `main()` resets the process registry the test daemon shares.)
        rc = main(["alerts", "show",
                   "--ledger", str(alert_serve_ctx.ledger_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bad-requests" in out
        assert "resolved" in out

    def test_malformed_explicit_rules_refuse_to_boot(self, tmp_path,
                                                     trained_encore):
        snapshot = tmp_path / "model.json"
        trained_encore.save_model(snapshot)
        bad = tmp_path / "bad.toml"
        bad.write_text('[[rule]]\nname = "x"\nkind = "nope"\n')
        with pytest.raises(AlertConfigError):
            DetectionServer(ServeConfig(
                snapshot=snapshot, port=0, alerts_path=bad, no_ledger=True,
            ))

    def test_watch_renders_one_frame(self, alert_serve_ctx, capsys):
        rc = main(["watch", alert_serve_ctx.base, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "alerts" in out.lower()
        assert "bad-requests" not in out or "firing" in out.lower()

    def test_watch_unreachable_daemon_fails(self, capsys):
        assert main(["watch", "http://127.0.0.1:9", "--once"]) == 1


# -- CLI ------------------------------------------------------------------------


class TestAlertsCli:
    def test_check_valid_file(self, tmp_path, capsys):
        path = tmp_path / "alerts.toml"
        path.write_text(RULES_TOML)
        assert main(["alerts", "check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 rule(s) valid" in out
        assert "error-burn" in out

    def test_check_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "alerts.toml"
        path.write_text('[[rule]]\nname = "x"\nkind = "nope"\n')
        assert main(["alerts", "check", str(path)]) == 1
        assert "invalid alert rules" in capsys.readouterr().err

    def test_check_missing_file(self, tmp_path):
        assert main(["alerts", "check", str(tmp_path / "nope.toml")]) == 1

    def test_check_dry_run_fires_against_snapshot(self, tmp_path, capsys):
        rules = tmp_path / "alerts.toml"
        rules.write_text(
            '[[rule]]\nname = "drift"\nkind = "drift_psi"\nthreshold = 0.25\n'
        )
        registry = MetricsRegistry()
        registry.gauge("drift.psi.max").set(0.4)
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(registry.to_json())
        rc = main(["alerts", "check", str(rules), "--metrics", str(snapshot)])
        out = capsys.readouterr().out
        assert rc == 2
        assert "would fire" in out

    def test_check_dry_run_quiet_snapshot(self, tmp_path, capsys):
        rules = tmp_path / "alerts.toml"
        rules.write_text(
            '[[rule]]\nname = "drift"\nkind = "drift_psi"\nthreshold = 0.25\n'
        )
        registry = MetricsRegistry()
        registry.gauge("drift.psi.max").set(0.1)
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(registry.to_json())
        rc = main(["alerts", "check", str(rules), "--metrics", str(snapshot)])
        assert rc == 0
        assert "no rule fires" in capsys.readouterr().out

    def test_show_empty_ledger(self, tmp_path, capsys):
        rc = main(["alerts", "show",
                   "--ledger", str(tmp_path / "ledger.jsonl")])
        assert rc == 0
        assert "no incidents" in capsys.readouterr().out

    def test_check_armed_run_records_incidents_in_ledger(self, tmp_path,
                                                         capsys):
        """`--alerts` on a batch run: monitor installed, final tick, ledger."""
        corpus = tmp_path / "corpus"
        rc = main(["generate", "--out", str(corpus), "--count", "8",
                   "--seed", "3"])
        assert rc == 0
        rules = tmp_path / "alerts.toml"
        # assemble.systems.total >= 1 the moment training parses images,
        # so this pages during the run — deliberately trigger-happy.
        rules.write_text(
            '[[rule]]\nname = "any-work"\nkind = "threshold"\n'
            'metric = "assemble.systems.total"\nstat = "value"\n'
            'threshold = 0.5\nseverity = "page"\n'
        )
        ledger_path = tmp_path / "ledger.jsonl"
        rc = main([
            "train", "--training", str(corpus),
            "--rules", str(tmp_path / "rules.json"),
            "--ledger", str(ledger_path),
            "--alerts", str(rules),
        ])
        capsys.readouterr()
        assert rc == 0
        assert get_monitor() is None  # uninstalled on the way out
        entries = Ledger(ledger_path).entries()
        assert entries, "train run must land in the ledger"
        incidents = [i for e in entries for i in e.incidents]
        assert [i["rule"] for i in incidents] == ["any-work"]
        assert incidents[0]["state"] == "firing"

    def test_invalid_alerts_file_fails_fast(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["generate", "--out", str(corpus), "--count", "4", "--seed", "3"])
        bad = tmp_path / "bad.toml"
        bad.write_text("not toml at [[\n")
        rc = main([
            "train", "--training", str(corpus),
            "--rules", str(tmp_path / "rules.json"),
            "--no-ledger", "--alerts", str(bad),
        ])
        assert rc == 1
        assert "alert" in capsys.readouterr().err.lower()
