"""Tests for rule inference (paper §5.1) and rule filtering (§5.2)."""

import pytest

from repro.core.assembler import DataAssembler
from repro.core.filters import FilterDecision, RuleFilterPipeline
from repro.core.inference import RuleInferencer
from repro.core.rules import ConcreteRule
from repro.core.templates import template_by_name
from repro.sysmodel.image import ConfigFile, SystemImage


def make_mysql_image(index, owner="mysql", port="3306"):
    """A tiny coherent mysql image for controlled inference tests."""
    image = SystemImage(f"inf-{index:03d}")
    image.accounts.ensure_service_account("mysql", 27)
    datadir = f"/var/lib/mysql{index % 3}"
    image.fs.add_dir(datadir, owner=owner, group=owner, mode=0o700)
    image.add_config_file(
        ConfigFile(
            "mysql", "/etc/my.cnf",
            "[client]\n"
            f"port = {port}\n"
            "[mysqld]\n"
            f"datadir = {datadir}\n"
            "user = mysql\n"
            f"port = {port}\n",
        )
    )
    return image


@pytest.fixture()
def controlled_dataset():
    images = [make_mysql_image(i, port=("3306" if i % 2 else "3307")) for i in range(20)]
    return DataAssembler().assemble_corpus(images)


class TestFilterPipeline:
    def make_rule(self, support=20, valid=20, ha=1.0, hb=1.0):
        return ConcreteRule("less_number", "a", "b", "<", support, valid, ha, hb)

    def test_support_filter(self):
        pipeline = RuleFilterPipeline(training_size=100, min_support_fraction=0.1)
        template = template_by_name("less_number")
        assert pipeline.decide(self.make_rule(support=5, valid=5), template) is FilterDecision.LOW_SUPPORT
        assert pipeline.decide(self.make_rule(support=10, valid=10), template) is FilterDecision.KEPT

    def test_confidence_filter(self):
        pipeline = RuleFilterPipeline(training_size=100)
        template = template_by_name("less_number")
        assert pipeline.decide(self.make_rule(support=20, valid=17), template) is FilterDecision.LOW_CONFIDENCE

    def test_entropy_filter_on_numeric_template(self):
        pipeline = RuleFilterPipeline(training_size=100)
        template = template_by_name("less_number")
        decision = pipeline.decide(self.make_rule(ha=0.1), template)
        assert decision is FilterDecision.LOW_ENTROPY

    def test_entropy_exempt_templates(self):
        pipeline = RuleFilterPipeline(training_size=100)
        ownership = template_by_name("ownership")
        rule = ConcreteRule("ownership", "a", "b", "=>", 20, 20, 0.0, 0.0)
        assert pipeline.decide(rule, ownership) is FilterDecision.KEPT

    def test_entropy_filter_disabled(self):
        pipeline = RuleFilterPipeline(training_size=100, use_entropy=False)
        template = template_by_name("less_number")
        assert pipeline.decide(self.make_rule(ha=0.0), template) is FilterDecision.KEPT

    def test_stats_accounting(self):
        pipeline = RuleFilterPipeline(training_size=100)
        template = template_by_name("less_number")
        pipeline.decide(self.make_rule(), template)
        pipeline.decide(self.make_rule(support=1, valid=1), template)
        pipeline.decide(self.make_rule(ha=0.0), template)
        assert pipeline.stats.candidates == 3
        assert pipeline.stats.kept == 1
        assert pipeline.stats.dropped_support == 1
        assert pipeline.stats.dropped_entropy == 1
        assert len(pipeline.stats.entropy_filtered_rules) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RuleFilterPipeline(training_size=0)
        with pytest.raises(ValueError):
            RuleFilterPipeline(training_size=10, min_confidence=2.0)


class TestRuleInferencer:
    def test_learns_flagship_ownership_rule(self, controlled_dataset):
        """Figure 1(b): datadir => user, the paper's running example."""
        inferencer = RuleInferencer()
        result = inferencer.infer(controlled_dataset)
        keys = {r.key for r in result.rules}
        assert (
            "ownership", "mysql:mysqld/datadir", "mysql:mysqld/user"
        ) in keys

    def test_learns_port_equality(self, controlled_dataset):
        inferencer = RuleInferencer()
        result = inferencer.infer(controlled_dataset)
        keys = {r.key for r in result.rules}
        assert ("equal_same_type", "mysql:client/port", "mysql:mysqld/port") in keys

    def test_candidate_pairs_grow_without_type_restriction(self, controlled_dataset):
        restricted = RuleInferencer(restrict_types=True)
        unrestricted = RuleInferencer(restrict_types=False)
        assert unrestricted.candidate_pair_count(controlled_dataset) > \
            restricted.candidate_pair_count(controlled_dataset)

    def test_rules_meet_thresholds(self, controlled_dataset):
        inferencer = RuleInferencer()
        result = inferencer.infer(controlled_dataset)
        for rule in result.rules:
            assert rule.confidence >= 0.9
            assert rule.support >= 2  # 10% of 20

    def test_pre_entropy_superset(self, controlled_dataset):
        inferencer = RuleInferencer()
        result = inferencer.infer(controlled_dataset)
        kept = {r.key for r in result.rules}
        pre = {r.key for r in result.pre_entropy_rules}
        assert kept <= pre

    def test_symmetric_template_no_reversed_duplicates(self, controlled_dataset):
        result = RuleInferencer().infer(controlled_dataset)
        equal_pairs = {
            (r.attribute_a, r.attribute_b)
            for r in result.rules
            if r.template_name == "equal_same_type"
        }
        for a, b in equal_pairs:
            assert (b, a) not in equal_pairs

    def test_noisy_corpus_drops_confidence(self):
        """One image violating ownership drops, 5 of 20 kills the rule."""
        images = [make_mysql_image(i) for i in range(15)]
        images += [make_mysql_image(15 + i, owner="root") for i in range(5)]
        dataset = DataAssembler().assemble_corpus(images)
        result = RuleInferencer().infer(dataset)
        keys = {r.key for r in result.rules}
        assert ("ownership", "mysql:mysqld/datadir", "mysql:mysqld/user") not in keys

    def test_custom_template_list(self, controlled_dataset):
        only_ownership = [template_by_name("ownership")]
        result = RuleInferencer(templates=only_ownership).infer(controlled_dataset)
        assert all(r.template_name == "ownership" for r in result.rules)
