"""Tests for model observability: provenance, drift, ledger, explain."""

import json

import pytest

from repro.core.pipeline import EnCore
from repro.corpus.generator import Ec2CorpusGenerator
from repro.obs.fileio import append_line, atomic_write_text
from repro.obs.ledger import (
    Ledger,
    LedgerEntry,
    diff_entries,
    fingerprint_payload,
)
from repro.obs.model import DriftMonitor, Provenance, _distribution_shift


# -- file IO -------------------------------------------------------------------


class TestFileIO:
    def test_atomic_write_creates_parents(self, tmp_path):
        dest = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(dest, "hello")
        assert dest.read_text() == "hello"

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        dest = tmp_path / "out.json"
        atomic_write_text(dest, "one")
        atomic_write_text(dest, "two")
        assert dest.read_text() == "two"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_append_line_appends(self, tmp_path):
        dest = tmp_path / "log" / "lines.jsonl"
        append_line(dest, "first")
        append_line(dest, "second")
        assert dest.read_text() == "first\nsecond\n"


# -- provenance ----------------------------------------------------------------


def _provenance(**overrides):
    base = dict(
        template="less_number",
        contributing_images=("ami-1", "ami-2", "ami-3"),
        support=3,
        valid_count=3,
        entropy_a=1.5,
        entropy_b=1.2,
        min_support=2,
        min_confidence=0.9,
        entropy_threshold=0.325,
        entropy_filtered=True,
        decision="kept",
    )
    base.update(overrides)
    return Provenance(**base)


class TestProvenance:
    def test_roundtrip(self):
        prov = _provenance()
        assert Provenance.from_dict(prov.to_dict()) == prov

    def test_digest_is_stable_and_content_sensitive(self):
        assert _provenance().digest() == _provenance().digest()
        assert _provenance().digest() != _provenance(support=4).digest()

    def test_stage_outcomes_kept(self):
        assert _provenance().stage_outcomes() == (
            ("support", "pass"), ("confidence", "pass"), ("entropy", "pass"),
        )

    def test_stage_outcomes_low_support_short_circuits(self):
        prov = _provenance(support=1, valid_count=1, decision="low_support")
        assert prov.stage_outcomes() == (
            ("support", "fail"),
            ("confidence", "not-reached"),
            ("entropy", "not-reached"),
        )

    def test_stage_outcomes_low_confidence(self):
        prov = _provenance(valid_count=2, decision="low_confidence")
        outcomes = dict(prov.stage_outcomes())
        assert outcomes["confidence"] == "fail"
        assert outcomes["entropy"] == "not-reached"

    def test_stage_outcomes_entropy_exempt(self):
        prov = _provenance(entropy_filtered=False, entropy_a=0.0)
        assert dict(prov.stage_outcomes())["entropy"] == "exempt"

    def test_describe_mentions_evidence(self):
        text = _provenance().describe()
        assert "3 training image(s)" in text
        assert "less_number" in text
        assert "kept" in text


class TestTrainedProvenance:
    def test_every_kept_rule_has_kept_provenance(self, trained_encore):
        for rule in trained_encore.model.rules:
            assert rule.provenance is not None
            assert rule.provenance.decision == "kept"
            assert rule.provenance.support == rule.support
            assert rule.provenance.valid_count == rule.valid_count
            assert len(rule.provenance.contributing_images) == rule.support

    def test_audit_covers_dropped_candidates(self, trained_encore):
        audit = trained_encore.model.inference.audit
        decisions = trained_encore.model.inference.decisions
        assert set(audit) == set(decisions)
        dropped = [key for key, d in decisions.items()
                   if d.value in ("low_support", "low_confidence")]
        assert dropped, "expected some rejected candidates"
        for key in dropped:
            prov = audit[key]
            assert prov.decision == decisions[key].value
            # counts-only for rejected candidates: the audit stays compact
            assert prov.contributing_images == ()
            assert prov.support > 0


# -- drift ---------------------------------------------------------------------


class _Row:
    """Minimal assembled-system stand-in for DriftMonitor.observe."""

    def __init__(self, values):
        self._values = dict(values)

    def attributes(self):
        return sorted(self._values)

    def value(self, attribute):
        return self._values.get(attribute)


BASELINE = {
    "app:port": {"80": 8, "8080": 2},
    "app:user": {"www": 10},
}


class TestDriftMonitor:
    def test_distribution_shift_zero_for_identical(self):
        psi, kl = _distribution_shift({"a": 5, "b": 5}, {"a": 50, "b": 50})
        assert psi == pytest.approx(0.0, abs=1e-9)
        assert kl == pytest.approx(0.0, abs=1e-9)

    def test_distribution_shift_positive_for_shifted(self):
        psi, kl = _distribution_shift({"a": 9, "b": 1}, {"a": 1, "b": 9})
        assert psi > 0.2
        assert kl > 0.0

    def test_observe_counts_new_and_unseen(self):
        monitor = DriftMonitor(BASELINE, training_size=10)
        monitor.observe(_Row({"app:port": "443", "app:extra": "x"}))
        assert monitor.targets == 1
        assert monitor.unseen_values["app:port"] == 1
        assert monitor.new_attributes["app:extra"] == 1

    def test_merge_matches_serial_observation(self):
        rows = [
            _Row({"app:port": "80", "app:user": "www"}),
            _Row({"app:port": "8080"}),
            _Row({"app:port": "443", "app:new": "y"}),
            _Row({"app:user": "root"}),
        ]
        serial = DriftMonitor(BASELINE, training_size=10)
        for row in rows:
            serial.observe(row)

        left = DriftMonitor(BASELINE, training_size=10)
        right = DriftMonitor(BASELINE, training_size=10)
        for row in rows[:2]:
            left.observe(row)
        for row in rows[2:]:
            right.observe(row)
        left.merge(right)
        assert left.summary().to_dict() == serial.summary().to_dict()

        # the wire path (worker snapshot fold) agrees too
        folded = DriftMonitor(BASELINE, training_size=10)
        for row in rows[:2]:
            folded.observe(row)
        shard = DriftMonitor(BASELINE, training_size=10)
        for row in rows[2:]:
            shard.observe(row)
        folded.merge_snapshot(json.loads(json.dumps(shard.to_dict())))
        assert folded.summary().to_dict() == serial.summary().to_dict()

    def test_min_observations_gates_psi_flagging(self):
        monitor = DriftMonitor(BASELINE, training_size=10, min_observations=5)
        monitor.observe(_Row({"app:port": "8080"}))
        summary = monitor.summary()
        # one observation: PSI untrusted, nothing flagged
        assert summary.drifted == []

        flagging = DriftMonitor(BASELINE, training_size=10, min_observations=2)
        for _ in range(3):
            flagging.observe(_Row({"app:port": "8080"}))
        drifted = flagging.summary().drifted
        assert [d.attribute for d in drifted] == ["app:port"]
        assert drifted[0].psi >= flagging.psi_threshold

    def test_new_attribute_always_flagged(self):
        monitor = DriftMonitor(BASELINE, training_size=10)
        monitor.observe(_Row({"app:rogue": "1"}))
        summary = monitor.summary()
        assert summary.new_attributes == ["app:rogue"]
        assert [d.attribute for d in summary.drifted] == ["app:rogue"]
        assert summary.drifted[0].new


class TestDriftAcrossWorkers:
    def test_check_many_drift_identical_any_worker_count(self, small_corpus):
        targets = list(Ec2CorpusGenerator(seed=33).generate(8))
        summaries = {}
        for workers in (1, 2):
            encore = EnCore()
            encore.train(small_corpus)
            encore.check_many(targets, workers=workers, chunk_size=3)
            summaries[workers] = encore.drift.summary().to_dict()
        assert summaries[1] == summaries[2]
        assert summaries[1]["targets"] == len(targets)


# -- explanations --------------------------------------------------------------


class TestExplanations:
    @pytest.fixture(scope="class")
    def reports(self, trained_encore):
        targets = list(Ec2CorpusGenerator(seed=55).generate(6))
        return [trained_encore.check(t) for t in targets]

    def test_every_warning_is_explained(self, reports):
        warnings = [w for report in reports for w in report.warnings]
        assert warnings, "expected some warnings from an off-population fleet"
        for warning in warnings:
            assert warning.explanation is not None
            assert warning.explanation.expected

    def test_correlation_explanations_carry_provenance(self, reports):
        correlated = [w for report in reports for w in report.warnings
                      if w.rule is not None]
        assert correlated, "expected at least one correlation violation"
        for warning in correlated:
            explanation = warning.explanation
            assert explanation.provenance_digest == warning.rule.provenance.digest()
            facts = dict(explanation.environment)
            assert warning.rule.attribute_a in facts
            assert warning.rule.attribute_b in facts

    def test_explanations_survive_report_roundtrip(self, reports):
        from repro.engine.artifacts import report_from_dict

        report = next(r for r in reports if r.warnings)
        restored = report_from_dict(json.loads(json.dumps(report.to_dict())))
        assert [w.explanation for w in restored.warnings] == [
            w.explanation for w in report.warnings
        ]

    def test_render_includes_why_lines(self, reports):
        report = next(r for r in reports if r.warnings)
        assert "why: " in report.render()


# -- ledger --------------------------------------------------------------------


def _entry(**overrides):
    base = dict(
        command="check",
        config_fingerprint="cfg",
        dataset_fingerprint="data",
        ruleset_digest="abcdef0123456789",
        rule_count=10,
        training_size=60,
        targets_checked=3,
        warning_counts={"correlation_violation": 2},
        drift={"drifted": [], "targets": 3},
        timing={"run_seconds": 1.0},
        workers=1,
    )
    base.update(overrides)
    return LedgerEntry(**base)


class TestLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        first = ledger.append(_entry())
        second = ledger.append(_entry(command="audit"))
        entries = ledger.entries()
        assert [e.run_id for e in entries] == [first.run_id, second.run_id]
        assert entries[0].core() == first.core()

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append(_entry())
        with path.open("a") as handle:
            handle.write('{"command": "check", "trunca')
        assert len(ledger.entries()) == 1

    def test_resolve_by_index_and_prefix(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        first = ledger.append(_entry())
        second = ledger.append(_entry(command="audit"))
        assert ledger.resolve("-1").run_id == second.run_id
        assert ledger.resolve("0").run_id == first.run_id
        assert ledger.resolve(first.run_id[:6]).run_id == first.run_id
        with pytest.raises(LookupError):
            ledger.resolve("zzzzzz")
        with pytest.raises(LookupError):
            Ledger(tmp_path / "missing.jsonl").resolve("-1")

    def test_entry_roundtrip(self):
        entry = _entry()
        restored = LedgerEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert restored.core() == entry.core()
        assert restored.run_id == entry.run_id

    def test_diff_identical_cores(self):
        a = _entry(workers=1, timing={"run_seconds": 1.0})
        b = _entry(workers=4, timing={"run_seconds": 0.3})
        diff = diff_entries(a, b)
        assert diff.identical()
        assert diff.regressions() == []
        assert "identical" in diff.render()

    def test_diff_reports_regressions(self):
        a = _entry()
        b = _entry(
            ruleset_digest="fedcba9876543210",
            rule_count=8,
            warning_counts={"correlation_violation": 5,
                            "suspicious_value": 1},
            drift={"drifted": [{"attribute": "app:port"}], "targets": 3},
        )
        diff = diff_entries(a, b)
        assert not diff.identical()
        regressions = diff.regressions()
        assert any("rule-set digest changed" in r for r in regressions)
        assert any("correlation_violation +3" in r for r in regressions)
        assert any("suspicious_value +1" in r for r in regressions)
        assert any("attribute drifted: app:port" in r for r in regressions)

    def test_fingerprint_payload_canonical(self):
        assert (fingerprint_payload({"a": 1, "b": 2})
                == fingerprint_payload({"b": 2, "a": 1}))
        assert (fingerprint_payload({"a": 1})
                != fingerprint_payload({"a": 2}))


class TestLedgerConcurrency:
    def test_concurrent_appends_never_interleave(self, tmp_path):
        """The serve-daemon regression: many threads, one ledger file.

        Every line must parse and every entry must survive — a torn or
        interleaved write would either drop an entry (skipped as a
        truncated line) or corrupt a neighbour's.
        """
        import threading

        ledger = Ledger(tmp_path / "ledger.jsonl")
        writers, per_writer = 8, 25

        def write(worker: int) -> None:
            for i in range(per_writer):
                ledger.append(_entry(
                    command="check",
                    targets_checked=worker * per_writer + i,
                ))

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        raw_lines = [line for line in
                     (tmp_path / "ledger.jsonl").read_text().splitlines()
                     if line.strip()]
        assert len(raw_lines) == writers * per_writer
        for line in raw_lines:
            json.loads(line)  # every line is complete JSON
        entries = ledger.entries()
        assert len(entries) == writers * per_writer
        assert (sorted(e.targets_checked for e in entries)
                == list(range(writers * per_writer)))


class TestLedgerCli:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        main(["generate", "--out", str(corpus), "--count", "20", "--seed", "3"])
        return corpus

    def test_workers_agree_on_semantic_core(self, corpus_dir, tmp_path, capsys):
        from repro.cli import main

        ledger_path = tmp_path / "ledger.jsonl"
        for workers in ("1", "2"):
            rc = main([
                "audit", "--training", str(corpus_dir),
                "--targets", str(corpus_dir),
                "--workers", workers, "--ledger", str(ledger_path),
            ])
            assert rc == 0
        rc = main(["ledger", "diff", "--ledger", str(ledger_path)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "semantic cores identical" in out
        entries = Ledger(ledger_path).entries()
        assert entries[0].core() == entries[1].core()
        assert [e.workers for e in entries] == [1, 2]

    def test_no_ledger_suppresses_recording(self, corpus_dir, tmp_path):
        from repro.cli import main

        ledger_path = tmp_path / "ledger.jsonl"
        main(["train", "--training", str(corpus_dir),
              "--ledger", str(ledger_path), "--no-ledger"])
        assert not ledger_path.exists()

    def test_ledger_show_lists_runs(self, corpus_dir, tmp_path, capsys):
        from repro.cli import main

        ledger_path = tmp_path / "ledger.jsonl"
        main(["train", "--training", str(corpus_dir),
              "--ledger", str(ledger_path)])
        capsys.readouterr()
        rc = main(["ledger", "show", "--ledger", str(ledger_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "train" in out and "rules=" in out

    def test_explain_command_traces_a_warning(self, corpus_dir, tmp_path,
                                              capsys):
        from repro.cli import main

        target = sorted(corpus_dir.glob("*.json"))[0]
        rc = main(["check", "--training", str(corpus_dir),
                   "--target", str(target), "--json", "--no-ledger"])
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        if not report["warnings"]:
            pytest.skip("target produced no warnings on this population")
        attribute = report["warnings"][0]["attribute"]
        rc = main(["explain", "--training", str(corpus_dir), "--no-ledger",
                   str(target), attribute])
        out = capsys.readouterr().out
        assert rc == 0
        assert "expected:" in out
        if report["warnings"][0].get("rule"):
            assert "rule provenance" in out
            assert "contributing images" in out

    def test_explain_clean_attribute_exits_nonzero(self, corpus_dir,
                                                   tmp_path, capsys):
        from repro.cli import main

        target = sorted(corpus_dir.glob("*.json"))[0]
        rc = main(["explain", "--training", str(corpus_dir), "--no-ledger",
                   str(target), "definitely-not-an-attribute"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no warning fired" in out
