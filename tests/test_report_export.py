"""Tests for report JSON export and the per-error-kind detection matrix."""

import json

import pytest

from repro.core.detector import Warning, WarningKind
from repro.core.report import Report
from repro.core.rules import ConcreteRule
from repro.injection.conferr import ConfErrInjector, InjectionKind
from repro.evaluation.matching import error_detected


class TestReportToDict:
    def make_report(self):
        rule = ConcreteRule("ownership", "mysql:mysqld/datadir",
                            "mysql:mysqld/user", "=>", 30, 30)
        return Report(
            "img-7",
            [
                Warning(WarningKind.CORRELATION, "mysql:mysqld/datadir",
                        "violates", 3.0, value="/var/lib/mysql", rule=rule),
                Warning(WarningKind.SUSPICIOUS_VALUE, "php:engine",
                        "unseen", 1.5, value="Offf"),
            ],
        )

    def test_shape(self):
        data = self.make_report().to_dict()
        assert data["image_id"] == "img-7"
        assert data["warning_count"] == 2
        assert data["warnings"][0]["rank"] == 1
        assert data["warnings"][0]["kind"] == "correlation_violation"
        assert data["warnings"][0]["rule"]["template"] == "ownership"
        assert data["warnings"][1]["rule"] is None

    def test_json_serialisable(self):
        text = json.dumps(self.make_report().to_dict())
        restored = json.loads(text)
        assert restored["warnings"][0]["attribute"] == "mysql:mysqld/datadir"

    def test_empty_report(self):
        data = Report("clean", []).to_dict()
        assert data["warning_count"] == 0
        assert data["warnings"] == []


class TestPerKindDetection:
    """Which detector sees which injected error kind (the Table 8 story,
    pinned mechanically per kind)."""

    @pytest.fixture(scope="class")
    def setup(self, small_corpus, held_out_image):
        from repro.baselines import EnvAugmentedBaseline, ValueComparisonBaseline
        from repro.core.pipeline import EnCore

        detectors = {
            "baseline": ValueComparisonBaseline(),
            "env": EnvAugmentedBaseline(),
            "encore": EnCore(),
        }
        for detector in detectors.values():
            detector.train(small_corpus)
        return detectors, held_out_image

    def _coverage(self, setup, kind, count=6):
        detectors, held = setup
        broken, errors = ConfErrInjector(seed=9).inject(
            held, "mysql", count=count, kinds=[kind]
        )
        out = {}
        for name, detector in detectors.items():
            report = detector.check(broken)
            out[name] = sum(error_detected(report, e) for e in errors)
        return out, len(errors)

    def test_wrong_path_gradient(self, setup):
        """Paths: baseline blind, env-aware detectors see them (§7.1.1)."""
        coverage, total = self._coverage(setup, InjectionKind.WRONG_PATH)
        assert coverage["baseline"] < total
        assert coverage["env"] >= coverage["baseline"]
        assert coverage["encore"] >= total - 1

    def test_typo_name_caught_by_all(self, setup):
        coverage, total = self._coverage(setup, InjectionKind.TYPO_NAME, count=4)
        assert coverage["baseline"] >= total - 1
        assert coverage["encore"] >= total - 1

    def test_order_violation_needs_correlations(self, setup):
        coverage, total = self._coverage(setup, InjectionKind.ORDER_VIOLATION)
        assert coverage["encore"] >= coverage["baseline"]
