"""Tests for environment augmentation (paper Table 5)."""

import pytest

from repro.core.augment import Augmenter
from repro.core.types import ConfigType
from repro.sysmodel.hardware import HardwareSpec
from repro.sysmodel.image import SystemImage


@pytest.fixture()
def image():
    img = SystemImage("aug-img")
    img.accounts.ensure_service_account("mysql", 27)
    img.fs.add_dir("/var/lib/mysql", owner="mysql", group="mysql", mode=0o700)
    img.fs.add_file("/var/lib/mysql/ibdata1", owner="mysql", group="mysql")
    img.fs.add_dir("/var/lib/mysql/db", owner="mysql")
    img.fs.add_symlink("/var/lib/mysql/link", "/var/lib/mysql/ibdata1")
    img.fs.add_file("/etc/php.ini", mode=0o644)
    return img


def suffixes(attrs):
    return {a.suffix: a for a in attrs}


class TestFilePathAugmentation:
    def test_directory_gets_seven_attributes(self, image):
        attrs = suffixes(
            Augmenter().augment("/var/lib/mysql", ConfigType.FILE_PATH, image)
        )
        # Table 5a: owner, group, type, permission, contents, hasDir, hasSymLink
        assert set(attrs) == {
            "owner", "group", "type", "permission", "contents", "hasDir", "hasSymLink"
        }
        assert attrs["owner"].value == "mysql"
        assert attrs["owner"].type is ConfigType.USER_NAME
        assert attrs["group"].value == "mysql"
        assert attrs["type"].value == "dir"
        assert attrs["permission"].value == "700"
        assert attrs["permission"].type is ConfigType.PERMISSION
        assert attrs["hasDir"].value == "True"
        assert attrs["hasSymLink"].value == "True"

    def test_regular_file_has_no_dir_attributes(self, image):
        attrs = suffixes(Augmenter().augment("/etc/php.ini", ConfigType.FILE_PATH, image))
        assert set(attrs) == {"owner", "group", "type", "permission"}
        assert attrs["type"].value == "file"

    def test_missing_path_reports_type_missing(self, image):
        attrs = suffixes(Augmenter().augment("/nowhere", ConfigType.FILE_PATH, image))
        assert set(attrs) == {"type"}
        assert attrs["type"].value == "missing"

    def test_contents_digest_stable(self, image):
        first = suffixes(Augmenter().augment("/var/lib/mysql", ConfigType.FILE_PATH, image))
        second = suffixes(Augmenter().augment("/var/lib/mysql", ConfigType.FILE_PATH, image))
        assert first["contents"].value == second["contents"].value

    def test_contents_digest_changes_with_listing(self, image):
        before = suffixes(Augmenter().augment("/var/lib/mysql", ConfigType.FILE_PATH, image))
        image.fs.add_file("/var/lib/mysql/new-table")
        after = suffixes(Augmenter().augment("/var/lib/mysql", ConfigType.FILE_PATH, image))
        assert before["contents"].value != after["contents"].value


class TestIPAugmentation:
    @pytest.mark.parametrize(
        "ip,local,v6,anyaddr",
        [
            ("10.0.1.1", "True", "False", "False"),
            ("192.168.1.5", "True", "False", "False"),
            ("172.16.0.1", "True", "False", "False"),
            ("172.32.0.1", "False", "False", "False"),
            ("8.8.8.8", "False", "False", "False"),
            ("0.0.0.0", "False", "False", "True"),
            ("::", "False", "True", "True"),
            ("fd00::1", "True", "True", "False"),
        ],
    )
    def test_rfc1918_and_friends(self, image, ip, local, v6, anyaddr):
        attrs = suffixes(Augmenter().augment(ip, ConfigType.IP_ADDRESS, image))
        assert attrs["Local"].value == local
        assert attrs["IPv6"].value == v6
        assert attrs["AnyAddr"].value == anyaddr


class TestUserAugmentation:
    def test_service_user(self, image):
        attrs = suffixes(Augmenter().augment("mysql", ConfigType.USER_NAME, image))
        assert attrs["isRootGroup"].value == "False"
        assert attrs["isAdmin"].value == "False"
        assert attrs["isGroup"].value == "mysql"
        assert attrs["isGroup"].type is ConfigType.GROUP_NAME

    def test_root_user(self, image):
        attrs = suffixes(Augmenter().augment("root", ConfigType.USER_NAME, image))
        assert attrs["isRootGroup"].value == "True"
        assert attrs["isAdmin"].value == "True"

    def test_unknown_user_has_no_group(self, image):
        attrs = suffixes(Augmenter().augment("ghost", ConfigType.USER_NAME, image))
        assert "isGroup" not in attrs


class TestSizeAugmentation:
    def test_bytes_column(self, image):
        attrs = suffixes(Augmenter().augment("64M", ConfigType.SIZE, image))
        assert attrs["bytes"].value == str(64 << 20)
        assert attrs["bytes"].type is ConfigType.NUMBER

    def test_unparseable_size_skipped(self, image):
        assert Augmenter().augment("lots", ConfigType.SIZE, image) == []


class TestEnvironmentAttributes:
    def test_dormant_image_has_no_hardware(self, image):
        env = Augmenter.environment_attributes(image)
        assert "OS.DistName" in env
        assert "Sys.IPAddress" in env
        assert "MemSize" not in env  # HardwareSpec.unavailable() by default

    def test_running_image_exposes_hardware(self):
        img = SystemImage("hw-img", hardware=HardwareSpec(cpu_threads=4, memory_bytes=2 << 30))
        env = Augmenter.environment_attributes(img)
        assert env["CPU.Threads"].value == "4"
        assert env["MemSize"].value == str(2 << 30)
        assert env["HDD.AvailSpace"].type is ConfigType.NUMBER

    def test_sys_users_lists_accounts(self, image):
        env = Augmenter.environment_attributes(image)
        assert "mysql" in env["Sys.Users"].value


class TestCustomAugmentation:
    def test_registered_attribute_invoked(self, image):
        augmenter = Augmenter()
        augmenter.register(
            ConfigType.PORT_NUMBER, "privileged", ConfigType.BOOLEAN,
            lambda value, img: str(int(value) < 1024),
        )
        attrs = suffixes(augmenter.augment("80", ConfigType.PORT_NUMBER, image))
        assert attrs["privileged"].value == "True"

    def test_none_result_skipped(self, image):
        augmenter = Augmenter()
        augmenter.register(
            ConfigType.CHARSET, "noop", ConfigType.STRING, lambda value, img: None
        )
        assert augmenter.augment("utf8", ConfigType.CHARSET, image) == []
