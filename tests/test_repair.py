"""Tests for the remediation advisor (the §9 auto-configuration aid)."""

import pytest

from repro.core.detector import Warning, WarningKind
from repro.core.repair import RepairAction, RepairAdvisor
from repro.core.rules import ConcreteRule


@pytest.fixture(scope="module")
def advisor(trained_encore):
    return RepairAdvisor(trained_encore.model.dataset)


@pytest.fixture()
def broken_setup(trained_encore, held_out_image):
    """A held-out image with a datadir ownership break, checked."""
    broken = held_out_image.copy("repair-target")
    datadir = None
    for line in broken.config_file("mysql").text.splitlines():
        if line.strip().startswith("datadir"):
            datadir = line.split("=", 1)[1].strip()
    broken.fs.chown(datadir, owner="root", group="root")
    report = trained_encore.check(broken)
    target = trained_encore.assembler.assemble(broken)
    return report, target, datadir


class TestOwnershipRepair:
    def test_chown_suggested(self, advisor, broken_setup):
        report, target, datadir = broken_setup
        suggestions = advisor.suggest(report, target)
        chowns = [s for s in suggestions if s.action is RepairAction.CHOWN]
        assert chowns
        assert any(datadir in s.proposal and "mysql" in s.proposal for s in chowns)

    def test_confidence_carries_rule_confidence(self, advisor, broken_setup):
        report, target, _ = broken_setup
        for suggestion in advisor.suggest(report, target):
            if suggestion.action is RepairAction.CHOWN:
                assert suggestion.confidence >= 0.9


class TestPerKindSuggestions:
    def _suggest_for(self, advisor, trained_encore, warning):
        # an empty target row suffices for value-level suggestions
        from repro.core.dataset import AssembledSystem
        from repro.sysmodel.image import SystemImage

        return advisor.suggest_one(warning, AssembledSystem(SystemImage("x")))

    def test_entry_name_rename(self, advisor, trained_encore):
        warning = Warning(
            WarningKind.ENTRY_NAME, "mysql:mysqld/dataadir", "unknown", 1.0
        )
        suggestion = self._suggest_for(advisor, trained_encore, warning)
        assert suggestion.action is RepairAction.RENAME_ENTRY
        assert "datadir" in suggestion.proposal

    def test_entry_name_no_match_manual(self, advisor, trained_encore):
        warning = Warning(
            WarningKind.ENTRY_NAME, "mysql:zzz_nonsense_entry", "unknown", 1.0
        )
        suggestion = self._suggest_for(advisor, trained_encore, warning)
        assert suggestion.action is RepairAction.MANUAL

    def test_suspicious_value_dominant_proposal(self, advisor, trained_encore):
        warning = Warning(
            WarningKind.SUSPICIOUS_VALUE, "mysql:mysqld/user", "unseen", 1.0,
            value="msql",
        )
        suggestion = self._suggest_for(advisor, trained_encore, warning)
        assert suggestion.action is RepairAction.SET_VALUE
        assert "'mysql'" in suggestion.proposal

    def test_augmented_column_routed_to_environment(self, advisor, trained_encore):
        warning = Warning(
            WarningKind.SUSPICIOUS_VALUE, "php:extension_dir.type", "unseen",
            3.2, value="file",
        )
        suggestion = self._suggest_for(advisor, trained_encore, warning)
        assert suggestion.action is RepairAction.MANUAL
        assert "environment" in suggestion.proposal

    def test_unknown_attribute_returns_none(self, advisor, trained_encore):
        warning = Warning(
            WarningKind.SUSPICIOUS_VALUE, "mysql:never_seen", "x", 1.0
        )
        assert self._suggest_for(advisor, trained_encore, warning) is None


class TestCorrelationRepairs:
    def make_target(self, values):
        from repro.core.dataset import AssembledSystem
        from repro.core.types import ConfigType
        from repro.sysmodel.image import SystemImage

        target = AssembledSystem(SystemImage("t"))
        for attr, value in values.items():
            target.set(attr, value, ConfigType.STRING)
        return target

    def make_warning(self, template, a, b, relation="<"):
        rule = ConcreteRule(template, a, b, relation, 10, 10)
        return Warning(WarningKind.CORRELATION, a, "viol", 3.0, rule=rule)

    def test_size_ordering_proposal(self, advisor):
        target = self.make_target(
            {"php:upload_max_filesize": "64M", "php:post_max_size": "8M"}
        )
        warning = self.make_warning(
            "less_size", "php:upload_max_filesize", "php:post_max_size"
        )
        suggestion = advisor.suggest_one(warning, target)
        assert suggestion.action is RepairAction.SET_VALUE
        assert "4M" in suggestion.proposal  # half the partner's bound

    def test_number_ordering_proposal(self, advisor):
        target = self.make_target({"a:x": "500", "a:y": "100"})
        warning = self.make_warning("less_number", "a:x", "a:y")
        suggestion = advisor.suggest_one(warning, target)
        assert "50" in suggestion.proposal

    def test_equality_mirror(self, advisor):
        target = self.make_target(
            {"mysql:client/port": "3307", "mysql:mysqld/port": "3306"}
        )
        warning = self.make_warning(
            "equal_same_type", "mysql:client/port", "mysql:mysqld/port", "=="
        )
        suggestion = advisor.suggest_one(warning, target)
        assert suggestion.action is RepairAction.SET_VALUE
        assert "3306" in suggestion.proposal

    def test_not_accessible_chmod(self, advisor):
        target = self.make_target(
            {"mysql:mysqld/log_error": "/var/log/mysqld.log", "apache:User": "apache"}
        )
        warning = self.make_warning(
            "not_accessible", "mysql:mysqld/log_error", "apache:User", "!="
        )
        suggestion = advisor.suggest_one(warning, target)
        assert suggestion.action is RepairAction.CHMOD
        assert "o-rwx" in suggestion.proposal

    def test_concat_create_path(self, advisor):
        target = self.make_target(
            {"apache:ServerRoot": "/etc/httpd", "apache:LoadModule/arg2": "modules/m.so"}
        )
        warning = self.make_warning(
            "concat_path", "apache:ServerRoot", "apache:LoadModule/arg2", "+=>"
        )
        suggestion = advisor.suggest_one(warning, target)
        assert suggestion.action is RepairAction.CREATE_PATH
        assert "/etc/httpd/modules/m.so" in suggestion.proposal

    def test_absent_values_skipped(self, advisor):
        target = self.make_target({})
        warning = self.make_warning("less_size", "a:x", "a:y")
        assert advisor.suggest_one(warning, target) is None

    def test_str_rendering(self, advisor):
        target = self.make_target({"a:x": "2", "a:y": "1"})
        warning = self.make_warning("less_number", "a:x", "a:y")
        text = str(advisor.suggest_one(warning, target))
        assert "set_value" in text and "confidence" in text
