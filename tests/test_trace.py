"""Distributed tracing: identity, propagation, exemplars, golden export.

The golden-file test pins the Chrome ``trace_event`` export for a
synthetic ``--workers 2`` profile document byte-for-byte — coordinator
spans, two worker shard forests re-anchored onto the coordinator clock
line, and the flow-event pairs that draw the cross-process parent
arrows.  The live tests then assert the same parent links hold for a
real pool run at ``--workers 2``, without pinning timestamps.
"""

import json
from pathlib import Path

from repro.core.pipeline import EnCore
from repro.obs.profile import chrome_trace
from repro.obs.tracing import (
    TraceContext,
    TraceExemplars,
    Tracer,
    current_context,
    merge_remote_spans,
    set_tracer,
    use_tracer,
)

GOLDEN = Path(__file__).parent / "data" / "chrome_trace.golden"


class FakeClock:
    """Deterministic clock: each read advances by ``step``."""

    def __init__(self, start: float = 0.0, step: float = 0.25) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def _flatten_ids(nodes) -> list:
    out = []
    for node in nodes:
        out.append(node.span_id)
        out.extend(_flatten_ids(node.children))
    return out


def _flatten_wire_names(nodes) -> list:
    out = []
    for node in nodes:
        out.append(node["name"])
        out.extend(_flatten_wire_names(node.get("children", ())))
    return out


# -- identity --------------------------------------------------------------------


class TestTraceIdentity:
    def test_span_ids_deterministic(self):
        def build():
            tracer = Tracer(clock=FakeClock(),
                            context=TraceContext.root("trace-fixed"))
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return _flatten_ids(tracer.roots)

        first, second = build(), build()
        assert first == second
        assert len(set(first)) == 3
        for span_id in first:
            assert len(span_id) == 16
            int(span_id, 16)  # hex

    def test_seed_separates_tracers_of_one_trace(self):
        context = TraceContext.root("shared-trace")
        a = Tracer(clock=FakeClock(), context=context, seed="shard0")
        b = Tracer(clock=FakeClock(), context=context, seed="shard1")
        with a.span("check.shard"):
            pass
        with b.span("check.shard"):
            pass
        assert a.roots[0].span_id != b.roots[0].span_id

    def test_context_round_trip(self):
        context = TraceContext("t" * 16, span_id="s" * 16)
        rebuilt = TraceContext.from_dict(context.to_dict())
        assert rebuilt.trace_id == context.trace_id
        assert rebuilt.span_id == context.span_id
        # Empty ids are elided from the wire form entirely.
        assert TraceContext.root("x").to_dict() == {"trace_id": "x"}

    def test_current_context_names_innermost_span(self):
        tracer = Tracer(context=TraceContext.root("ctx-trace"))
        with use_tracer(tracer):
            with tracer.span("outer") as outer:
                context = current_context()
                assert context is not None
                assert context.trace_id == "ctx-trace"
                assert context.span_id == outer.span_id
                with tracer.span("inner") as inner:
                    assert current_context().span_id == inner.span_id
        assert current_context() is None


# -- propagation (in-process unit + live pool) -----------------------------------


class TestRemoteMerge:
    def test_worker_forest_reparents_under_shipping_span(self):
        coordinator = Tracer(clock=FakeClock(),
                             context=TraceContext.root("merge-trace"))
        with use_tracer(coordinator):
            with coordinator.span("check.batch") as batch:
                shipped = current_context().to_dict()
                # ... the worker, on the far side of the ENCB frame:
                worker = Tracer(
                    clock=FakeClock(start=100.0),
                    context=TraceContext.from_dict(shipped),
                    seed="shard0",
                )
                with worker.span("check.shard", shard=0):
                    pass
                merge_remote_spans(worker.snapshot(shard=0))
        assert len(coordinator.remote) == 1
        snapshot = coordinator.remote[0]
        assert snapshot["trace_id"] == "merge-trace"
        assert snapshot["parent_id"] == batch.span_id
        assert snapshot["spans"][0]["parent_id"] == batch.span_id
        assert snapshot["shard"] == 0
        assert set(snapshot["anchor"]) == {"epoch", "clock"}

    def test_empty_worker_snapshot_is_dropped(self):
        coordinator = Tracer(context=TraceContext.root("quiet"))
        with use_tracer(coordinator):
            merge_remote_spans({"trace_id": "quiet", "spans": []})
            merge_remote_spans({})
        assert coordinator.remote == []


class TestLivePropagation:
    def test_check_stream_workers2_parent_links(self, trained_encore,
                                                small_corpus):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            reports = list(trained_encore.check_stream(
                list(small_corpus[:6]), workers=2, chunk_size=3,
            ))
        finally:
            set_tracer(None)
        assert len(reports) == 6
        local_ids = set(_flatten_ids(tracer.roots))
        assert tracer.remote, "worker span snapshots should fold back"
        shards = set()
        for snapshot in tracer.remote:
            assert snapshot["trace_id"] == tracer.trace_id
            # The remote parent is a real coordinator span ...
            assert snapshot["parent_id"] in local_ids
            shards.add(snapshot["shard"])
            for root in snapshot["spans"]:
                # ... and every worker root names it as parent.
                assert root["parent_id"] == snapshot["parent_id"]
                assert root["name"] == "check.shard"
                assert root["span_id"] not in local_ids
        assert shards == {0, 1}

    def test_rules_identical_tracing_on_off_any_workers(self, small_corpus):
        images = list(small_corpus[:20])

        def digest(tracing: bool, workers: int) -> str:
            encore = EnCore()
            if tracing:
                set_tracer(Tracer())
            try:
                model = encore.train(images, workers=workers, chunk_size=5)
            finally:
                set_tracer(None)
            return model.ruleset_digest()

        baseline = digest(tracing=False, workers=1)
        assert digest(tracing=True, workers=1) == baseline
        assert digest(tracing=False, workers=2) == baseline
        assert digest(tracing=True, workers=2) == baseline


# -- golden Chrome export --------------------------------------------------------


def synthetic_workers2_doc() -> dict:
    """A hand-built ``--workers 2`` profile document, fully pinned.

    Mirrors what ``repro check --profile --workers 2`` produces: a
    coordinator span tree (``check`` → ``check.batch``), and one remote
    span forest per shard with its own epoch↔clock anchor.  Shard 0's
    clock starts at 100 s and shard 1's at 200 s — re-anchoring through
    the two anchor pairs must land both on the coordinator's 10 s line.
    """
    return {
        "command": "check",
        "workers": 2,
        "trace_id": "1111111111111111",
        "anchor": {"epoch": 1000.0, "clock": 10.0},
        "stages": {},
        "shards": [],
        "spans": [
            {
                "name": "check", "ts": 10.0, "dur": 4.0,
                "span_id": "aaaaaaaaaaaaaa01",
                "children": [
                    {
                        "name": "check.batch", "ts": 10.5, "dur": 3.0,
                        "span_id": "aaaaaaaaaaaaaa02",
                        "parent_id": "aaaaaaaaaaaaaa01",
                        "attributes": {"targets": 4, "workers": 2},
                    },
                ],
            },
        ],
        "remote_spans": [
            {
                "trace_id": "1111111111111111",
                "parent_id": "aaaaaaaaaaaaaa02",
                "shard": 1,
                "anchor": {"epoch": 1000.8, "clock": 200.0},
                "spans": [
                    {
                        "name": "check.shard", "ts": 200.1, "dur": 1.2,
                        "span_id": "cccccccccccccc01",
                        "parent_id": "aaaaaaaaaaaaaa02",
                        "attributes": {"shard": 1, "items": 2},
                        "children": [
                            {
                                "name": "assemble.image", "ts": 200.2,
                                "dur": 0.4,
                                "span_id": "cccccccccccccc02",
                                "parent_id": "cccccccccccccc01",
                            },
                        ],
                    },
                ],
            },
            {
                "trace_id": "1111111111111111",
                "parent_id": "aaaaaaaaaaaaaa02",
                "shard": 0,
                "anchor": {"epoch": 1000.7, "clock": 100.0},
                "spans": [
                    {
                        "name": "check.shard", "ts": 100.0, "dur": 1.0,
                        "span_id": "bbbbbbbbbbbbbb01",
                        "parent_id": "aaaaaaaaaaaaaa02",
                        "attributes": {"shard": 0, "items": 2},
                    },
                ],
            },
        ],
    }


class TestChromeTraceGolden:
    def test_export_matches_golden(self):
        rendered = json.dumps(chrome_trace(synthetic_workers2_doc()),
                              indent=1, sort_keys=True) + "\n"
        assert rendered == GOLDEN.read_text()

    def test_cross_process_flow_links(self):
        events = chrome_trace(synthetic_workers2_doc())["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # One flow start at the coordinator parent span, one finish per
        # worker forest, all tied together by the parent span id.
        assert len(starts) == 1
        assert starts[0]["pid"] == 1
        assert starts[0]["id"] == "aaaaaaaaaaaaaa02"
        assert len(finishes) == 2
        assert sorted(e["pid"] for e in finishes) == [100, 101]
        assert all(e["id"] == "aaaaaaaaaaaaaa02" for e in finishes)
        assert all(e["bp"] == "e" for e in finishes)

    def test_worker_spans_reanchored_onto_coordinator_clock(self):
        events = chrome_trace(synthetic_workers2_doc())["traceEvents"]
        origin_us = {
            (e["pid"], e["name"]): e["ts"]
            for e in events if e["ph"] == "B"
        }
        # Shard 0 began at worker-clock 100.0 = epoch 1000.7 = 0.7 s
        # after the coordinator anchor → coordinator clock 10.7 s, i.e.
        # 700ms after the `check` root at 10.0 s.
        assert origin_us[(100, "check.shard")] == 700_000
        # Shard 1: 200.1 on a clock anchored at (1000.8, 200.0) →
        # epoch 1000.9 → coordinator 10.9 s → 900 ms.
        assert origin_us[(101, "check.shard")] == 900_000
        assert origin_us[(101, "assemble.image")] == 1_000_000


# -- exemplars -------------------------------------------------------------------


class TestTraceExemplars:
    def test_keeps_slowest(self):
        exemplars = TraceExemplars(capacity=2)
        for index, seconds in enumerate([0.1, 0.5, 0.3, 0.9, 0.2]):
            exemplars.offer({"trace_id": f"t{index}"}, seconds=seconds,
                            route="/v1/check", request_id=f"r{index}")
        data = exemplars.to_dict()
        assert data["seen"] == 5
        assert [item["seconds"] for item in data["slowest"]] == [0.9, 0.5]
        assert data["slowest"][0]["trace"] == {"trace_id": "t3"}
        assert data["errored"] == []

    def test_keeps_recent_errors_in_full(self):
        exemplars = TraceExemplars(capacity=2)
        exemplars.offer({"trace_id": "ok"}, seconds=9.0, request_id="fast")
        for index in range(3):
            exemplars.offer({"trace_id": f"boom{index}"}, seconds=0.01,
                            status=500, request_id=f"e{index}")
        data = exemplars.to_dict()
        # Newest errors first; the oldest fell off the ring.
        assert [item["request_id"] for item in data["errored"]] == ["e2", "e1"]
        # Error traces are complete, not summaries.
        assert data["errored"][0]["trace"] == {"trace_id": "boom2"}
        # The slow-but-healthy request still holds a slow slot.
        assert data["slowest"][0]["request_id"] == "fast"
