"""Integration tests for the EnCore facade (train → check → persist)."""

import pytest

from repro.core.pipeline import EnCore, EnCoreConfig
from repro.core.report import Report
from repro.core.rules import RuleSet


class TestConfig:
    def test_defaults_match_paper(self):
        config = EnCoreConfig()
        assert config.min_confidence == 0.90
        assert config.min_support_fraction == 0.10
        assert abs(config.entropy_threshold - 0.325) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            EnCoreConfig(min_confidence=1.5)
        with pytest.raises(ValueError):
            EnCoreConfig(min_support_fraction=-0.1)

    def test_negative_entropy_threshold_rejected(self):
        with pytest.raises(ValueError, match="entropy_threshold"):
            EnCoreConfig(entropy_threshold=-0.1)

    def test_zero_entropy_threshold_allowed(self):
        assert EnCoreConfig(entropy_threshold=0.0).entropy_threshold == 0.0

    def test_dict_round_trip(self):
        config = EnCoreConfig(min_confidence=0.8, use_entropy_filter=False)
        assert EnCoreConfig.from_dict(config.to_dict()) == config


class TestTrainCheck:
    def test_check_requires_training(self, held_out_image):
        with pytest.raises(RuntimeError):
            EnCore().check(held_out_image)

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            EnCore().train([])

    def test_train_produces_model(self, trained_encore):
        model = trained_encore.model
        assert model is not None
        assert model.rule_count > 0
        summary = model.summary()
        assert summary["training_systems"] == 60
        assert summary["attributes"] > 100

    def test_check_returns_ranked_report(self, trained_encore, held_out_image):
        report = trained_encore.check(held_out_image)
        assert isinstance(report, Report)
        scores = [w.score for w in report.warnings]
        assert scores == sorted(scores, reverse=True)

    def test_clean_heldout_has_few_warnings(self, trained_encore, held_out_image):
        """A same-population image should produce a near-clean report."""
        report = trained_encore.check(held_out_image)
        assert len(report.warnings) <= 15

    def test_check_many(self, trained_encore, small_corpus):
        reports = trained_encore.check_many(small_corpus[:3])
        assert len(reports) == 3

    def test_detects_ownership_break(self, trained_encore, held_out_image):
        broken = held_out_image.copy("broken")
        datadir = None
        for line in broken.config_file("mysql").text.splitlines():
            if line.strip().startswith("datadir"):
                datadir = line.split("=", 1)[1].strip()
        assert datadir
        broken.fs.chown(datadir, owner="root", group="root")
        report = trained_encore.check(broken)
        assert report.rank_of_attribute("mysqld/datadir") is not None

    def test_flagship_rules_learned(self, trained_encore):
        keys = {r.key for r in trained_encore.model.rules}
        assert ("ownership", "mysql:mysqld/datadir", "mysql:mysqld/user") in keys
        assert (
            "equal_same_type", "apache:Directory/Directory.arg", "apache:DocumentRoot"
        ) in keys

    def test_upload_ordering_learned(self, trained_encore):
        keys = {r.key for r in trained_encore.model.rules}
        assert (
            "less_size", "php:upload_max_filesize", "php:post_max_size"
        ) in keys


class TestPersistence:
    def test_save_load_rules(self, trained_encore, tmp_path, held_out_image):
        path = trained_encore.save_rules(tmp_path / "rules.json")
        loaded = trained_encore.load_rules(path)
        assert isinstance(loaded, RuleSet)
        assert len(loaded) == trained_encore.model.rule_count
        # checking still works after the reload
        report = trained_encore.check(held_out_image)
        assert isinstance(report, Report)

    def test_save_without_model_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            EnCore().save_rules(tmp_path / "x.json")

    def test_load_rules_without_model_raises(self, trained_encore, tmp_path):
        """The docstring promises a trained model; enforce it loudly
        instead of returning rules that never reach a detector."""
        path = trained_encore.save_rules(tmp_path / "rules.json")
        with pytest.raises(RuntimeError, match="trained model"):
            EnCore().load_rules(path)

    def test_rules_reusable_across_instances(self, trained_encore, tmp_path, small_corpus):
        """'The learned rules can be reused to check different systems'."""
        path = trained_encore.save_rules(tmp_path / "rules.json")
        other = EnCore()
        other.train(small_corpus[:10])
        before = other.model.rule_count
        other.load_rules(path)
        assert other.model.rule_count == trained_encore.model.rule_count != before


class TestCustomizationIntegration:
    def test_custom_template_via_config(self, small_corpus):
        text = (
            "$$TypeOperator\n"
            "Number : Operator '=='\n"
            "eq (v1,v2): { return v1 == v2 }\n"
            "$$Template\n"
            "[A] == [B] <Number, Number>\n"
        )
        encore = EnCore(EnCoreConfig(customization_text=text))
        assert any(t.name.startswith("custom_") for t in encore.templates)
        model = encore.train(small_corpus[:10])
        assert model.rule_count > 0

    def test_register_template_programmatically(self, small_corpus):
        from repro.core.templates import RelationKind, RuleTemplate
        from repro.core.types import ConfigType

        encore = EnCore()
        encore.register_template(
            RuleTemplate(
                "always_holds", ConfigType.PORT_NUMBER, ConfigType.PORT_NUMBER,
                RelationKind.EQUAL, lambda a, b, s: True,
            )
        )
        model = encore.train(small_corpus[:10])
        assert model.rules.by_template("always_holds")
