"""Tests for the Strider-style known-good-state baseline."""

import pytest

from repro.baselines.strider import StriderBaseline


@pytest.fixture(scope="module")
def strider(small_corpus):
    baseline = StriderBaseline()
    baseline.train(small_corpus, reference=small_corpus[0])
    return baseline


class TestStrider:
    def test_requires_training(self, held_out_image):
        with pytest.raises(RuntimeError):
            StriderBaseline().check(held_out_image)

    def test_requires_peers(self):
        with pytest.raises(ValueError):
            StriderBaseline().train([])

    def test_reference_is_clean_against_itself(self, strider, small_corpus):
        report = strider.check(small_corpus[0])
        assert len(report.warnings) == 0

    def test_change_frequency_zero_for_constant(self, strider):
        assert strider.change_frequency("mysql:mysqld/user") == 0.0

    def test_change_frequency_high_for_paths(self, strider):
        # Paths vary across images thanks to deploy customisation.
        assert strider.change_frequency("php:extension_dir") > 0.2

    def test_unknown_attribute_full_churn(self, strider):
        assert strider.change_frequency("nope:entry") == 1.0

    def test_detects_stable_entry_drift(self, strider, held_out_image):
        broken = held_out_image.copy("s1")
        text = broken.config_file("mysql").text.replace(
            "user = mysql", "user = masql"
        )
        broken.replace_config_text("mysql", text)
        report = strider.check(broken)
        assert report.rank_of_attribute("mysqld/user") is not None

    def test_churny_differences_filtered(self, strider, held_out_image):
        """Path entries differ from the reference on most systems, but
        Strider's change-frequency filter keeps them out of the report —
        the weakness EnCore's environment typing overcomes."""
        report = strider.check(held_out_image)
        assert all(
            "datadir" not in w.attribute or w.kind.value == "entry_name_violation"
            for w in report.warnings
        )

    def test_ranked_output(self, strider, held_out_image):
        report = strider.check(held_out_image)
        scores = [w.score for w in report.warnings]
        assert scores == sorted(scores, reverse=True)
