"""Tests for the anomaly detector (paper §6): the four checks + ranking."""

import pytest

from repro.core.assembler import DataAssembler
from repro.core.detector import AnomalyDetector, Warning, WarningKind
from repro.core.inference import RuleInferencer
from repro.core.report import Report
from repro.sysmodel.image import ConfigFile, SystemImage


def make_image(index, datadir_owner="mysql", extra_line="", entry_name="datadir"):
    image = SystemImage(f"det-{index:03d}")
    image.accounts.ensure_service_account("mysql", 27)
    image.fs.add_dir("/var/lib/mysql", owner=datadir_owner, group=datadir_owner, mode=0o700)
    text = (
        "[mysqld]\n"
        f"{entry_name} = /var/lib/mysql\n"
        "user = mysql\n"
        "port = 3306\n"
        "max_connections = 100\n"
    )
    if extra_line:
        text += extra_line + "\n"
    image.add_config_file(ConfigFile("mysql", "/etc/my.cnf", text))
    return image


@pytest.fixture(scope="module")
def detector_setup():
    assembler = DataAssembler()
    dataset = assembler.assemble_corpus(make_image(i) for i in range(20))
    rules = RuleInferencer().infer(dataset).rules
    detector = AnomalyDetector(dataset, rules, inferencer=assembler.inferencer)
    return assembler, detector


class TestEntryNameViolation:
    def test_misspelled_entry_flagged_with_suggestion(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(99, entry_name="dataadir"))
        warnings = detector.check_entry_names(target)
        assert any(
            w.kind is WarningKind.ENTRY_NAME and "dataadir" in w.message
            and "datadir" in w.message
            for w in warnings
        )

    def test_novel_entry_flagged_without_suggestion(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(98, extra_line="zz_custom_flag = 1"))
        warnings = detector.check_entry_names(target)
        match = [w for w in warnings if "zz_custom_flag" in w.attribute]
        assert match and "never seen" in match[0].message

    def test_known_entries_quiet(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(97))
        assert detector.check_entry_names(target) == []


class TestCorrelationViolation:
    def test_ownership_violation(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(96, datadir_owner="root"))
        warnings = detector.check_correlations(target)
        assert any(
            w.rule is not None and w.rule.template_name == "ownership"
            for w in warnings
        )

    def test_score_tracks_confidence(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(95, datadir_owner="root"))
        for warning in detector.check_correlations(target):
            assert warning.score == pytest.approx(2.0 + warning.rule.confidence)

    def test_absent_entries_ignored(self, detector_setup):
        assembler, detector = detector_setup
        image = SystemImage("det-absent")
        image.add_config_file(ConfigFile("mysql", "/etc/my.cnf", "[mysqld]\nport = 3306\n"))
        target = assembler.assemble(image)
        assert detector.check_correlations(target) == []


class TestTypeViolation:
    def test_wrong_kind_value(self, detector_setup):
        """The learned FilePath type fails on a value that is not a path."""
        assembler, detector = detector_setup
        image = make_image(94)
        image.replace_config_text(
            "mysql",
            "[mysqld]\ndatadir = not-a-path-at-all!\nuser = mysql\nport = 3306\n"
            "max_connections = 100\n",
        )
        target = assembler.assemble(image)
        warnings = detector.check_types(target)
        assert any(
            w.kind is WarningKind.DATA_TYPE and w.attribute == "mysql:mysqld/datadir"
            for w in warnings
        )

    def test_clean_target_quiet(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(93))
        assert detector.check_types(target) == []


class TestSuspiciousValue:
    def test_unseen_value_on_stable_column(self, detector_setup):
        assembler, detector = detector_setup
        image = make_image(92)
        image.replace_config_text(
            "mysql",
            "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\nport = 3306\n"
            "max_connections = 9999\n",
        )
        target = assembler.assemble(image)
        warnings = detector.check_suspicious_values(target)
        match = [w for w in warnings if w.attribute == "mysql:mysqld/max_connections"]
        assert match
        # cardinality-1 training column gets the ICF + stability boost
        assert match[0].score == pytest.approx(3.2)

    def test_seen_values_quiet(self, detector_setup):
        assembler, detector = detector_setup
        target = assembler.assemble(make_image(91))
        assert detector.check_suspicious_values(target) == []


class TestRanking:
    def test_rank_is_score_descending(self):
        warnings = [
            Warning(WarningKind.SUSPICIOUS_VALUE, "a", "m", 0.5),
            Warning(WarningKind.DATA_TYPE, "b", "m", 3.5),
            Warning(WarningKind.CORRELATION, "c", "m", 2.9),
        ]
        ranked = AnomalyDetector.rank(warnings)
        assert [w.attribute for w in ranked] == ["b", "c", "a"]

    def test_deterministic_tie_break(self):
        warnings = [
            Warning(WarningKind.ENTRY_NAME, "b", "m", 1.0),
            Warning(WarningKind.ENTRY_NAME, "a", "m", 1.0),
        ]
        ranked = AnomalyDetector.rank(warnings)
        assert [w.attribute for w in ranked] == ["a", "b"]


class TestReport:
    def make_report(self):
        return Report(
            "img-1",
            [
                Warning(WarningKind.DATA_TYPE, "mysql:mysqld/datadir", "bad", 3.5),
                Warning(WarningKind.CORRELATION, "php:upload_max_filesize", "bad", 2.9),
            ],
        )

    def test_rank_of_attribute_full_and_tail(self):
        report = self.make_report()
        assert report.rank_of_attribute("mysql:mysqld/datadir") == 1
        assert report.rank_of_attribute("mysqld/datadir") == 1
        assert report.rank_of_attribute("upload_max_filesize") == 2
        assert report.rank_of_attribute("missing") is None

    def test_rank_with_kind_filter(self):
        report = self.make_report()
        assert report.rank_of_attribute(
            "mysqld/datadir", kind=WarningKind.CORRELATION
        ) is None

    def test_paper_rank_notation(self):
        report = self.make_report()
        assert report.paper_rank_notation("mysqld/datadir") == "1(2)"
        assert report.paper_rank_notation("nope") == "-"

    def test_counts_by_kind(self):
        counts = self.make_report().counts_by_kind()
        assert counts[WarningKind.DATA_TYPE] == 1

    def test_render_contains_warnings(self):
        text = self.make_report().render()
        assert "img-1" in text and "datadir" in text

    def test_render_truncates(self):
        report = Report(
            "x", [Warning(WarningKind.ENTRY_NAME, f"a{i}", "m", 1.0) for i in range(30)]
        )
        text = report.render(limit=5)
        assert "25 more" in text
