"""Cross-population checking: EC2-trained rules on private-cloud images.

The paper's §7.1.3 applies rules learned from EC2 training images to 300
commercial private-cloud images.  These tests validate that transfer:
the model must not drown production images in false warnings, and must
still catch the same defect classes there.
"""

import pytest

from repro.corpus.private_cloud import PrivateCloudGenerator


@pytest.fixture(scope="module")
def private_images():
    return PrivateCloudGenerator(seed=55).generate(12)


class TestTransfer:
    def test_private_images_checkable(self, trained_encore, private_images):
        reports = trained_encore.check_many(private_images[:4])
        assert len(reports) == 4

    def test_false_warning_rate_bounded(self, trained_encore, private_images):
        """Production images are clean; EC2-trained rules must not flood
        them (the paper found only 24 issues across 300 images)."""
        total = 0
        for image in private_images:
            total += len(trained_encore.check(image))
        assert total / len(private_images) < 25

    def test_ownership_defect_caught_across_population(
        self, trained_encore, private_images
    ):
        broken = private_images[0].copy("pc-broken")
        datadir = None
        for line in broken.config_file("mysql").text.splitlines():
            if line.strip().startswith("datadir"):
                datadir = line.split("=", 1)[1].strip()
        assert datadir and broken.fs.exists(datadir)
        broken.fs.chown(datadir, owner="root", group="root")
        report = trained_encore.check(broken)
        assert report.rank_of_attribute("mysqld/datadir") is not None

    def test_hardware_rows_ignored_gracefully(self, trained_encore, private_images):
        """Private-cloud images carry hardware env rows the EC2 training
        set never saw; they must not crash checking or produce
        entry-name warnings (env rows are machine-generated)."""
        from repro.core.detector import WarningKind

        report = trained_encore.check(private_images[1])
        assert all(
            w.kind is not WarningKind.ENTRY_NAME or not w.attribute.startswith("env:")
            for w in report.warnings
        )
