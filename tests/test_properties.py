"""Cross-module property-based tests on pipeline invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.assembler import DataAssembler
from repro.core.filters import FilterDecision, RuleFilterPipeline
from repro.core.inference import RuleInferencer
from repro.core.rules import ConcreteRule
from repro.core.templates import default_templates, template_by_name
from repro.corpus.generator import Ec2CorpusGenerator
from repro.parsers.registry import default_registry


# -- filter monotonicity -------------------------------------------------------

rule_strategy = st.builds(
    ConcreteRule,
    template_name=st.just("less_number"),
    attribute_a=st.just("a"),
    attribute_b=st.just("b"),
    relation=st.just("<"),
    support=st.integers(min_value=0, max_value=100),
    valid_count=st.just(0),
    entropy_a=st.floats(min_value=0, max_value=3),
    entropy_b=st.floats(min_value=0, max_value=3),
).map(
    lambda r: ConcreteRule(
        r.template_name, r.attribute_a, r.attribute_b, r.relation,
        r.support, r.support, r.entropy_a, r.entropy_b,
    )
)


@given(rule_strategy, st.integers(min_value=1, max_value=200))
def test_filter_decisions_partition(rule, training_size):
    """Every candidate gets exactly one decision and stats always add up."""
    pipeline = RuleFilterPipeline(training_size=training_size)
    template = template_by_name("less_number")
    decision = pipeline.decide(rule, template)
    assert decision in FilterDecision
    stats = pipeline.stats
    assert stats.candidates == (
        stats.kept + stats.dropped_support
        + stats.dropped_confidence + stats.dropped_entropy
    )


@given(rule_strategy)
def test_entropy_filter_only_shrinks(rule):
    """Disabling the entropy filter can only keep more rules."""
    template = template_by_name("less_number")
    with_filter = RuleFilterPipeline(training_size=50, use_entropy=True)
    without_filter = RuleFilterPipeline(training_size=50, use_entropy=False)
    kept_with = with_filter.decide(rule, template) is FilterDecision.KEPT
    kept_without = without_filter.decide(rule, template) is FilterDecision.KEPT
    assert not (kept_with and not kept_without)


# -- corpus / parser round-trips ----------------------------------------------

@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=9))
def test_render_parse_render_stable(index, seed):
    """Parsing a rendered config and re-rendering is a fixed point at the
    entry level: names/values survive a parse round trip."""
    image = Ec2CorpusGenerator(seed=seed).generate_one(index)
    registry = default_registry()
    for config in image.config_files():
        entries = registry.parse(config.app, config.text)
        reparsed = registry.parse(config.app, config.text)
        assert [(e.name, e.value) for e in entries] == [
            (e.name, e.value) for e in reparsed
        ]
        assert all(e.app == config.app for e in entries)


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=200))
def test_assembly_deterministic(index):
    image = Ec2CorpusGenerator(seed=4).generate_one(index)
    assembler = DataAssembler()
    first = assembler.assemble(image).as_row()
    second = assembler.assemble(image).as_row()
    assert first == second


# -- inference invariants --------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_dataset():
    images = Ec2CorpusGenerator(seed=77, apps=("mysql",)).generate(20)
    return DataAssembler().assemble_corpus(images)


def test_rules_never_reference_unknown_attributes(tiny_dataset):
    result = RuleInferencer().infer(tiny_dataset)
    universe = set(tiny_dataset.attributes())
    for rule in result.rules:
        assert rule.attribute_a in universe
        assert rule.attribute_b in universe


def test_rules_respect_template_types(tiny_dataset):
    from repro.core.types import ConfigType

    templates = {t.name: t for t in default_templates()}
    result = RuleInferencer().infer(tiny_dataset)
    for rule in result.rules:
        template = templates[rule.template_name]
        if template.type_a is not ConfigType.STRING:
            assert tiny_dataset.type_of(rule.attribute_a) is template.type_a
        if template.type_b is not ConfigType.STRING:
            assert tiny_dataset.type_of(rule.attribute_b) is template.type_b


def test_tighter_confidence_yields_subset(tiny_dataset):
    loose = RuleInferencer(min_confidence=0.8).infer(tiny_dataset)
    strict = RuleInferencer(min_confidence=0.95).infer(tiny_dataset)
    loose_keys = {r.key for r in loose.rules}
    strict_keys = {r.key for r in strict.rules}
    assert strict_keys <= loose_keys


def test_higher_support_yields_subset(tiny_dataset):
    low = RuleInferencer(min_support_fraction=0.05).infer(tiny_dataset)
    high = RuleInferencer(min_support_fraction=0.5).infer(tiny_dataset)
    assert {r.key for r in high.rules} <= {r.key for r in low.rules}


def test_inference_deterministic(tiny_dataset):
    first = RuleInferencer().infer(tiny_dataset)
    second = RuleInferencer().infer(tiny_dataset)
    assert [r.key for r in first.rules] == [r.key for r in second.rules]


# -- detection invariants ----------------------------------------------------------

def test_training_members_self_check_consistent(trained_encore, small_corpus):
    """Checking a training member reports only warnings the training data
    itself can support: rule violations below full confidence, and
    value/type deviations on columns where training genuinely disagreed
    (a noisy member is anomalous against its own cohort — the
    PeerPressure premise).  Never entry-name violations."""
    from repro.core.detector import WarningKind

    dataset = trained_encore.model.dataset
    for image in small_corpus[:5]:
        report = trained_encore.check(image)
        for warning in report.warnings:
            assert warning.kind is not WarningKind.ENTRY_NAME
            if warning.kind is WarningKind.CORRELATION:
                assert warning.rule.confidence < 1.0
            elif warning.kind is WarningKind.DATA_TYPE:
                stats = dataset.stats(warning.attribute)
                assert stats is not None and stats.type_agreement < 1.0
            elif warning.kind is WarningKind.SUSPICIOUS_VALUE:
                # its own value is in training, so it can never be unseen
                stats = dataset.stats(warning.attribute)
                assert stats is not None and stats.seen(warning.value) is False


def test_check_does_not_mutate_target(trained_encore, held_out_image):
    before = held_out_image.fs.file_list()
    text_before = held_out_image.config_file("mysql").text
    trained_encore.check(held_out_image)
    assert held_out_image.fs.file_list() == before
    assert held_out_image.config_file("mysql").text == text_before


def test_report_deterministic(trained_encore, held_out_image):
    first = trained_encore.check(held_out_image)
    second = trained_encore.check(held_out_image)
    assert [str(w) for w in first.warnings] == [str(w) for w in second.warnings]
