"""Unit tests for the simulated filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.sysmodel.filesystem import FileKind, FileMeta, FileSystem, normalize_path


class TestNormalizePath:
    def test_rejects_relative(self):
        with pytest.raises(ValueError):
            normalize_path("etc/passwd")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_path("")

    def test_collapses_dots_and_slashes(self):
        assert normalize_path("/var//log/../log/./app") == "/var/log/app"

    def test_root(self):
        assert normalize_path("/") == "/"

    def test_trailing_slash_dropped(self):
        assert normalize_path("/var/log/") == "/var/log"


class TestFileMeta:
    def test_symlink_requires_target(self):
        with pytest.raises(ValueError):
            FileMeta("/a", kind=FileKind.SYMLINK)

    def test_regular_file_rejects_target(self):
        with pytest.raises(ValueError):
            FileMeta("/a", kind=FileKind.FILE, target="/b")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FileMeta("/a", mode=0o10000)

    def test_octal_mode(self):
        assert FileMeta("/a", mode=0o644).octal_mode == "644"
        assert FileMeta("/a", mode=0o7).octal_mode == "007"

    def test_world_readable(self):
        assert FileMeta("/a", mode=0o644).world_readable()
        assert not FileMeta("/a", mode=0o640).world_readable()

    def test_readable_by_owner(self):
        meta = FileMeta("/a", owner="mysql", mode=0o600)
        assert meta.readable_by("mysql")
        assert not meta.readable_by("apache")

    def test_readable_by_group(self):
        meta = FileMeta("/a", owner="mysql", group="adm", mode=0o640)
        assert meta.readable_by("syslog", groups=["adm"])
        assert not meta.readable_by("syslog", groups=["users"])

    def test_root_reads_everything(self):
        assert FileMeta("/a", mode=0o000).readable_by("root")

    def test_writable_by(self):
        meta = FileMeta("/a", owner="mysql", mode=0o600)
        assert meta.writable_by("mysql")
        assert not meta.writable_by("nobody")


class TestFileSystem:
    def test_root_exists(self):
        fs = FileSystem()
        assert fs.is_dir("/")

    def test_add_file_creates_parents(self):
        fs = FileSystem()
        fs.add_file("/var/log/app/app.log")
        assert fs.is_dir("/var/log/app")
        assert fs.is_file("/var/log/app/app.log")

    def test_parents_are_root_owned_dirs(self):
        fs = FileSystem()
        fs.add_file("/opt/x/y")
        parent = fs.get("/opt/x")
        assert parent is not None and parent.is_dir and parent.owner == "root"

    def test_cannot_replace_dir_with_file(self):
        fs = FileSystem()
        fs.add_dir("/data")
        with pytest.raises(ValueError):
            fs.add_file("/data")

    def test_replace_file_metadata(self):
        fs = FileSystem()
        fs.add_file("/a", mode=0o644)
        fs.add_file("/a", mode=0o600)
        assert fs.get("/a").mode == 0o600

    def test_remove_subtree(self):
        fs = FileSystem()
        fs.add_file("/data/db/f1")
        fs.add_file("/data/db/f2")
        fs.remove("/data/db")
        assert not fs.exists("/data/db")
        assert not fs.exists("/data/db/f1")
        assert fs.exists("/data")

    def test_remove_root_rejected(self):
        with pytest.raises(ValueError):
            FileSystem().remove("/")

    def test_children_immediate_only(self):
        fs = FileSystem()
        fs.add_file("/d/a")
        fs.add_file("/d/sub/b")
        names = [m.path for m in fs.children("/d")]
        assert names == ["/d/a", "/d/sub"]

    def test_children_of_file_is_empty(self):
        fs = FileSystem()
        fs.add_file("/f")
        assert fs.children("/f") == []

    def test_walk_sorted(self):
        fs = FileSystem()
        fs.add_file("/b")
        fs.add_file("/a")
        paths = [m.path for m in fs.walk("/")]
        assert paths == sorted(paths)

    def test_symlink_resolution(self):
        fs = FileSystem()
        fs.add_file("/target")
        fs.add_symlink("/link", "/target")
        resolved = fs.resolve("/link")
        assert resolved is not None and resolved.path == "/target"

    def test_relative_symlink_resolution(self):
        fs = FileSystem()
        fs.add_file("/d/target")
        fs.add_symlink("/d/link", "target")
        resolved = fs.resolve("/d/link")
        assert resolved is not None and resolved.path == "/d/target"

    def test_broken_symlink_resolves_none(self):
        fs = FileSystem()
        fs.add_symlink("/link", "/nowhere")
        assert fs.resolve("/link") is None

    def test_symlink_loop_bounded(self):
        fs = FileSystem()
        fs.add_symlink("/a", "/b")
        fs.add_symlink("/b", "/a")
        assert fs.resolve("/a") is None

    def test_has_subdirectories_and_symlinks(self):
        fs = FileSystem()
        fs.add_dir("/w")
        assert not fs.has_subdirectories("/w")
        assert not fs.has_symlinks("/w")
        fs.add_dir("/w/sub")
        fs.add_symlink("/w/l", "/w/sub")
        assert fs.has_subdirectories("/w")
        assert fs.has_symlinks("/w")

    def test_chown_chmod(self):
        fs = FileSystem()
        fs.add_file("/f")
        fs.chown("/f", owner="mysql")
        fs.chmod("/f", 0o600)
        meta = fs.get("/f")
        assert meta.owner == "mysql" and meta.mode == 0o600

    def test_chown_missing_raises(self):
        with pytest.raises(KeyError):
            FileSystem().chown("/missing", owner="x")

    def test_copy_is_independent(self):
        fs = FileSystem()
        fs.add_file("/f")
        clone = fs.copy()
        clone.chmod("/f", 0o600)
        assert fs.get("/f").mode == 0o644

    def test_contains_garbage_path(self):
        assert "not-a-path" not in FileSystem()

    def test_meta_map_and_file_list_agree(self):
        fs = FileSystem()
        fs.add_file("/x/y")
        assert sorted(fs.meta_map()) == fs.file_list()


# Property-based tests ------------------------------------------------------

_segments = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=5), min_size=1, max_size=4
)


@given(_segments)
def test_added_paths_always_exist(segments):
    fs = FileSystem()
    path = "/" + "/".join(segments)
    fs.add_file(path)
    assert fs.exists(path)
    # every ancestor exists as a directory
    parts = path.strip("/").split("/")
    for i in range(1, len(parts)):
        assert fs.is_dir("/" + "/".join(parts[:i]))


@given(_segments, st.integers(min_value=0, max_value=0o777))
def test_chmod_roundtrip(segments, mode):
    fs = FileSystem()
    path = "/" + "/".join(segments)
    fs.add_file(path)
    fs.chmod(path, mode)
    assert fs.get(path).mode == mode


@given(_segments)
def test_remove_then_absent(segments):
    fs = FileSystem()
    path = "/" + "/".join(segments)
    fs.add_file(path)
    fs.remove(path)
    assert not fs.exists(path)
