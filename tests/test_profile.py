"""Tests for per-stage resource profiling (repro.obs.profile)."""

import json

import pytest

from repro.cli import main
from repro.core.pipeline import EnCore
from repro.corpus.generator import Ec2CorpusGenerator
from repro.obs.profile import (
    COORDINATOR_PID,
    SHARD_PID_BASE,
    StageProfile,
    StageProfiler,
    chrome_trace,
    get_profiler,
    load_profile,
    merge_profile_snapshot,
    profile_document,
    render_profile,
    set_profiler,
)
from repro.obs.tracing import Tracer, set_tracer, span


class FakeClock:
    """Deterministic clock: each read advances by *step* seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_profiler(step=1.0, cpu_step=0.25):
    return StageProfiler(
        clock=FakeClock(step), cpu_clock=FakeClock(cpu_step),
        trace_allocations=False,
    )


@pytest.fixture(autouse=True)
def _no_global_instruments():
    yield
    set_profiler(None)
    set_tracer(None)


class TestStageProfile:
    def test_record_accumulates(self):
        stage = StageProfile()
        stage.record(1.0, 0.5, rss=100, alloc=10)
        stage.record(2.0, 0.5, rss=50, alloc=30)
        assert stage.wall_s == 3.0
        assert stage.cpu_s == 1.0
        assert stage.calls == 2
        assert stage.max_rss_bytes == 100  # max, not sum
        assert stage.alloc_peak_bytes == 30

    def test_merge_is_associative(self):
        def part(wall, rss):
            p = StageProfile()
            p.record(wall, wall / 2, rss=rss, alloc=rss)
            return p

        left = part(1.0, 10).merge(part(2.0, 30).merge(part(4.0, 20)))
        right = part(1.0, 10).merge(part(2.0, 30)).merge(part(4.0, 20))
        assert left.to_dict() == right.to_dict()
        assert left.calls == 3
        assert left.wall_s == 7.0
        assert left.max_rss_bytes == 30

    def test_dict_round_trip(self):
        stage = StageProfile()
        stage.record(1.5, 0.75, rss=2048, alloc=512)
        assert StageProfile.from_dict(stage.to_dict()).to_dict() == stage.to_dict()

    def test_from_dict_tolerates_missing_fields(self):
        stage = StageProfile.from_dict({"wall_s": 2.0})
        assert stage.wall_s == 2.0
        assert stage.calls == 0
        assert stage.max_rss_bytes == 0


class TestStageProfiler:
    def test_profile_records_wall_and_cpu(self):
        profiler = make_profiler(step=1.0, cpu_step=0.25)
        with profiler.profile("assemble"):
            pass
        stage = profiler.stages["assemble"]
        assert stage.calls == 1
        assert stage.wall_s == pytest.approx(1.0)
        assert stage.cpu_s == pytest.approx(0.25)

    def test_nested_stages_record_separately(self):
        profiler = make_profiler()
        with profiler.profile("train"):
            with profiler.profile("train.assemble"):
                pass
        assert set(profiler.stages) == {"train", "train.assemble"}
        assert profiler.stages["train"].wall_s > profiler.stages["train.assemble"].wall_s

    def test_shard_sample_fields(self):
        profiler = make_profiler()
        with profiler.shard("assemble", shard_index=3, items=7):
            pass
        (sample,) = profiler.shards
        assert sample["stage"] == "assemble"
        assert sample["shard"] == 3
        assert sample["items"] == 7
        assert sample["wall_s"] == pytest.approx(1.0)
        assert sample["epoch_end"] >= sample["epoch_start"]

    def test_merge_dict_folds_stages_and_concatenates_shards(self):
        worker = make_profiler()
        with worker.profile("assemble"):
            pass
        with worker.shard("assemble", 0, items=3):
            pass
        coordinator = make_profiler()
        with coordinator.profile("assemble"):
            pass
        coordinator.merge_dict(worker.to_dict())
        assert coordinator.stages["assemble"].calls == 2
        assert len(coordinator.shards) == 1
        # The worker's meta/anchor never overwrite the coordinator's.
        assert coordinator.meta["pid"] != 0

    def test_merge_order_independent(self):
        snapshots = []
        for index in range(3):
            worker = make_profiler(step=float(index + 1))
            with worker.profile("assemble"):
                pass
            with worker.shard("assemble", index, items=index):
                pass
            snapshots.append(worker.to_dict())

        forward = make_profiler()
        backward = make_profiler()
        for snap in snapshots:
            forward.merge_dict(snap)
        for snap in reversed(snapshots):
            backward.merge_dict(snap)
        assert (forward.to_dict()["stages"] == backward.to_dict()["stages"])
        assert len(forward.shards) == len(backward.shards) == 3

    def test_digest_deterministic_and_content_sensitive(self):
        a, b = make_profiler(), make_profiler()
        with a.profile("x"):
            pass
        with b.profile("x"):
            pass
        assert a.digest() == b.digest()
        with b.profile("y"):
            pass
        assert a.digest() != b.digest()

    def test_tracemalloc_peak_recorded(self):
        profiler = StageProfiler().start()
        try:
            with profiler.profile("alloc"):
                blob = [bytes(64 * 1024) for _ in range(16)]  # ~1 MB
            assert blob
            assert profiler.stages["alloc"].alloc_peak_bytes > 256 * 1024
        finally:
            profiler.stop()

    def test_installed_profiler_taps_span_boundary(self):
        profiler = make_profiler()
        set_profiler(profiler)
        with span("infer"):
            pass
        assert profiler.stages["infer"].calls == 1
        assert profiler.stages["infer"].wall_s == pytest.approx(1.0)

    def test_span_error_still_records_and_annotates(self):
        profiler = make_profiler()
        set_profiler(profiler)
        tracer = Tracer(clock=FakeClock())
        set_tracer(tracer)
        with pytest.raises(RuntimeError):
            with span("detect"):
                raise RuntimeError("boom")
        assert profiler.stages["detect"].calls == 1
        (root,) = tracer.roots
        assert root.attributes["error"] == "RuntimeError"
        assert root.end is not None  # closed despite the raise

    def test_merge_snapshot_noop_without_active_profiler(self):
        set_profiler(None)
        assert merge_profile_snapshot({"stages": {}}) is None

    def test_merge_snapshot_folds_into_active(self):
        worker = make_profiler()
        with worker.profile("check"):
            pass
        coordinator = make_profiler()
        set_profiler(coordinator)
        assert merge_profile_snapshot(worker.to_dict()) is coordinator
        assert coordinator.stages["check"].calls == 1


class TestTrainProfileParity:
    """Serial and sharded --profile runs agree on the deterministic surface."""

    @pytest.fixture(scope="class")
    def images(self):
        return Ec2CorpusGenerator(seed=53).generate(20)

    def profiled_train(self, images, workers):
        profiler = StageProfiler(trace_allocations=False).start()
        set_profiler(profiler)
        try:
            model = EnCore().train(images, workers=workers)
        finally:
            set_profiler(None)
            profiler.stop()
        return model, profiler

    def test_stage_coverage_and_calls_match_serial(self, images):
        serial_model, serial = self.profiled_train(images, workers=1)
        sharded_model, sharded = self.profiled_train(images, workers=2)
        assert serial_model.rules.to_json() == sharded_model.rules.to_json()
        # Stages common to both paths appear in both profiles with
        # identical call counts; wall time legitimately differs.
        common = set(serial.stages) & set(sharded.stages)
        assert {"train", "train.assemble", "train.infer", "infer"} <= common
        for name in common:
            assert serial.stages[name].calls == sharded.stages[name].calls, name
            assert sharded.stages[name].wall_s > 0
        if sharded.shards:  # empty ⇒ pool unavailable, serial fallback
            assert sum(s["items"] for s in sharded.shards) == len(images)
            assert {s["stage"] for s in sharded.shards} == {"assemble"}


class TestChromeTrace:
    def make_doc(self):
        profiler = make_profiler()
        tracer = Tracer(clock=profiler.clock)
        set_profiler(profiler)
        set_tracer(tracer)
        try:
            with span("train"):
                with span("train.assemble", images=4):
                    pass
                with span("train.infer"):
                    pass
        finally:
            set_profiler(None)
            set_tracer(None)
        with profiler.shard("assemble", 0, items=2):
            pass
        with profiler.shard("assemble", 1, items=2):
            pass
        return profile_document(profiler, tracer, command="train")

    def test_events_are_monotonic_and_paired(self):
        trace = chrome_trace(self.make_doc())
        events = trace["traceEvents"]
        stamps = [e["ts"] for e in events if e["ph"] in "BEX"]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)
        # Every B has a matching E, well-nested per pid/tid.
        stacks = {}
        for event in events:
            key = (event["pid"], event.get("tid"))
            if event["ph"] == "B":
                stacks.setdefault(key, []).append(event["name"])
            elif event["ph"] == "E":
                assert stacks[key], f"E without B on {key}"
                assert stacks[key].pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_span_nesting_preserved(self):
        trace = chrome_trace(self.make_doc())
        names = [e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "B" and e["pid"] == COORDINATOR_PID]
        assert names == ["train", "train.assemble", "train.infer"]

    def test_shard_pids_deterministic(self):
        doc = self.make_doc()
        trace = chrome_trace(doc)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert sorted(e["pid"] for e in xs) == [SHARD_PID_BASE, SHARD_PID_BASE + 1]
        # Re-export of the identical document is byte-stable.
        assert chrome_trace(doc) == trace
        for event in xs:
            assert event["args"]["items"] == 2
            assert "worker_pid" in event["args"]

    def test_process_metadata_named(self):
        trace = chrome_trace(self.make_doc())
        named = {e["pid"]: e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert named[COORDINATOR_PID] == "coordinator"
        assert named[SHARD_PID_BASE] == "shard-0"

    def test_empty_document(self):
        trace = chrome_trace({"stages": {}, "shards": [], "spans": []})
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]


class TestRenderProfile:
    def test_table_contents(self):
        profiler = make_profiler()
        with profiler.profile("train"):
            with profiler.profile("train.assemble"):
                pass
        with profiler.shard("assemble", 0, items=5):
            pass
        text = render_profile(profiler.to_dict())
        assert "per-stage resources" in text
        assert "train.assemble" in text
        assert "shard skew" in text
        assert "5 item(s)" in text

    def test_top_limits_rows(self):
        profiler = make_profiler()
        for index in range(6):
            with profiler.profile(f"stage-{index}"):
                pass
        text = render_profile(profiler.to_dict(), top=2)
        assert "top 2 by wall time" in text
        assert sum(line.strip().startswith("stage-") for line in text.splitlines()) == 2

    def test_empty_profile(self):
        assert render_profile({}) == "no profile samples recorded\n"


@pytest.fixture(scope="module")
def profile_corpus(tmp_path_factory):
    out = tmp_path_factory.mktemp("profile-corpus")
    assert main(["generate", "--out", str(out), "--count", "16", "--seed", "11"]) == 0
    return out


class TestProfileCli:
    def test_train_profile_end_to_end(self, profile_corpus, tmp_path, capsys):
        profile_path = tmp_path / "profile.json"
        rc = main([
            "train", "--training", str(profile_corpus),
            "--model", str(tmp_path / "model.json"),
            "--profile", str(profile_path), "--workers", "2", "--no-ledger",
        ])
        assert rc == 0
        doc = load_profile(profile_path)
        assert doc["meta"]["command"] == "train"
        assert doc["meta"]["workers"] == 2
        assert {"train", "train.assemble", "train.infer"} <= set(doc["stages"])
        assert all(s["wall_s"] > 0 for s in doc["stages"].values())
        assert doc["spans"], "profiling implies an in-memory span tree"

        capsys.readouterr()
        assert main(["profile", str(profile_path)]) == 0
        table = capsys.readouterr().out
        assert "per-stage resources" in table
        assert "train.infer" in table

        chrome_path = tmp_path / "trace.json"
        assert main(["profile", str(profile_path),
                     "--format", "chrome", "--out", str(chrome_path)]) == 0
        trace = json.loads(chrome_path.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "B" in phases and "E" in phases

    def test_profile_json_format(self, profile_corpus, tmp_path, capsys):
        profile_path = tmp_path / "profile.json"
        main([
            "train", "--training", str(profile_corpus),
            "--model", str(tmp_path / "model.json"),
            "--profile", str(profile_path), "--no-ledger",
        ])
        capsys.readouterr()
        assert main(["profile", str(profile_path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "stages" in doc

    def test_profile_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", str(tmp_path / "nope.json")])

    def test_ledger_records_profile_digest(self, profile_corpus, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        rc = main([
            "train", "--training", str(profile_corpus),
            "--model", str(tmp_path / "model.json"),
            "--profile", str(tmp_path / "profile.json"),
            "--ledger", str(ledger_path),
        ])
        assert rc == 0
        entry = json.loads(ledger_path.read_text().splitlines()[-1])
        assert len(entry["profile"]["digest"]) == 64
        assert entry["profile"]["stages"] > 0

    def test_unprofiled_run_leaves_no_profiler(self, profile_corpus, tmp_path):
        rc = main([
            "train", "--training", str(profile_corpus),
            "--model", str(tmp_path / "model.json"), "--no-ledger",
        ])
        assert rc == 0
        assert get_profiler() is None
