"""Tests for the baseline detectors and the ConfErr-style injector."""

import pytest

from repro.baselines.peerpressure import EnvAugmentedBaseline, ValueComparisonBaseline
from repro.injection.conferr import ConfErrInjector, InjectionKind


class TestBaselines:
    def test_check_requires_training(self, held_out_image):
        with pytest.raises(RuntimeError):
            ValueComparisonBaseline().check(held_out_image)

    def test_baseline_does_not_see_environment(self, small_corpus):
        baseline = ValueComparisonBaseline()
        dataset = baseline.train(small_corpus[:10])
        assert not any(a.startswith("env:") for a in dataset.attributes())
        assert not any("." in a.split(":", 1)[1] and dataset.is_augmented(a)
                       for a in dataset.attributes())

    def test_env_baseline_sees_augmented_columns(self, small_corpus):
        baseline = EnvAugmentedBaseline()
        dataset = baseline.train(small_corpus[:10])
        assert any(dataset.is_augmented(a) for a in dataset.attributes())

    def test_clean_image_mostly_quiet(self, small_corpus, held_out_image):
        baseline = ValueComparisonBaseline()
        baseline.train(small_corpus)
        report = baseline.check(held_out_image)
        assert len(report.warnings) <= 12

    def test_detects_unseen_stable_value(self, small_corpus, held_out_image):
        baseline = ValueComparisonBaseline()
        baseline.train(small_corpus)
        broken = held_out_image.copy("b")
        text = broken.config_file("mysql").text.replace("user = mysql", "user = msql")
        broken.replace_config_text("mysql", text)
        report = baseline.check(broken)
        assert report.rank_of_attribute("mysqld/user") is not None

    def test_misses_wrong_path_but_env_catches(self, small_corpus, held_out_image):
        """The paper's §7.1.1 observation, reproduced as a test."""
        plain = ValueComparisonBaseline()
        env = EnvAugmentedBaseline()
        plain.train(small_corpus)
        env.train(small_corpus)
        broken = held_out_image.copy("b2")
        text = broken.config_file("php").text
        new_text = []
        for line in text.splitlines():
            if line.startswith("extension_dir"):
                line = "extension_dir = /opt/missing/modules"
            new_text.append(line)
        broken.replace_config_text("php", "\n".join(new_text) + "\n")
        plain_report = plain.check(broken)
        env_report = env.check(broken)
        assert plain_report.rank_of_attribute("extension_dir") is None
        assert env_report.rank_of_attribute("extension_dir") is not None


class TestConfErrInjector:
    def test_injects_requested_count(self, held_out_image):
        injector = ConfErrInjector(seed=1)
        broken, errors = injector.inject(held_out_image, "mysql", count=10)
        assert len(errors) == 10
        assert broken.image_id != held_out_image.image_id

    def test_original_untouched(self, held_out_image):
        text_before = held_out_image.config_file("mysql").text
        ConfErrInjector(seed=1).inject(held_out_image, "mysql", count=5)
        assert held_out_image.config_file("mysql").text == text_before

    def test_deterministic(self, held_out_image):
        a = ConfErrInjector(seed=7).inject(held_out_image, "php", count=8)[1]
        b = ConfErrInjector(seed=7).inject(held_out_image, "php", count=8)[1]
        assert [e.describe() for e in a] == [e.describe() for e in b]

    def test_different_seeds_differ(self, held_out_image):
        a = ConfErrInjector(seed=1).inject(held_out_image, "php", count=8)[1]
        b = ConfErrInjector(seed=2).inject(held_out_image, "php", count=8)[1]
        assert [e.describe() for e in a] != [e.describe() for e in b]

    def test_errors_actually_change_file(self, held_out_image):
        broken, errors = ConfErrInjector(seed=3).inject(held_out_image, "apache", count=10)
        original = held_out_image.config_file("apache").text.splitlines()
        mutated = broken.config_file("apache").text.splitlines()
        changed = sum(1 for a, b in zip(original, mutated) if a != b)
        assert changed == len(errors)

    def test_distinct_lines(self, held_out_image):
        _, errors = ConfErrInjector(seed=5).inject(held_out_image, "mysql", count=12)
        lines = [e.line_number for e in errors]
        assert len(set(lines)) == len(lines)

    def test_too_many_errors_rejected(self, held_out_image):
        with pytest.raises(ValueError):
            ConfErrInjector().inject(held_out_image, "mysql", count=10_000)

    def test_kind_restriction(self, held_out_image):
        _, errors = ConfErrInjector(seed=4).inject(
            held_out_image, "mysql", count=6, kinds=[InjectionKind.WRONG_PATH]
        )
        # Fallback to typo_value happens only when a kind is inapplicable;
        # wrong-path should dominate.
        assert sum(1 for e in errors if e.kind is InjectionKind.WRONG_PATH) >= 3

    def test_wrong_path_lands_on_path_lines(self, held_out_image):
        _, errors = ConfErrInjector(seed=4).inject(
            held_out_image, "mysql", count=5, kinds=[InjectionKind.WRONG_PATH]
        )
        for error in errors:
            if error.kind is InjectionKind.WRONG_PATH:
                assert "/" in error.original_line

    def test_order_violation_scales_numbers(self, held_out_image):
        _, errors = ConfErrInjector(seed=4).inject(
            held_out_image, "php", count=4, kinds=[InjectionKind.ORDER_VIOLATION]
        )
        scaled = [e for e in errors if e.kind is InjectionKind.ORDER_VIOLATION]
        assert scaled
        for error in scaled:
            original_value = error.original_line.split("=")[-1].strip()
            mutated_value = error.mutated_line.split("=")[-1].strip()
            assert original_value != mutated_value

    def test_describe_mentions_kind(self, held_out_image):
        _, errors = ConfErrInjector(seed=6).inject(held_out_image, "php", count=3)
        for error in errors:
            assert error.kind.value in error.describe()

    def test_delete_entry_kind(self, held_out_image):
        _, errors = ConfErrInjector(seed=8).inject(
            held_out_image, "mysql", count=3, kinds=[InjectionKind.DELETE_ENTRY]
        )
        deletions = [e for e in errors if e.kind is InjectionKind.DELETE_ENTRY]
        assert deletions
        assert all(e.mutated_line is None for e in deletions)
