"""Tests for the data plane: codec, warm worker pool, result cache.

Covers the three layers of ``docs/architecture.md`` § Data plane and
the contracts they promise each other:

* the codec round-trips every value the pipeline ships and fails with a
  *typed* error (never a stray ``struct.error``) on truncated, corrupt,
  or future-versioned bytes, so poisoned artifacts quarantine instead of
  crashing runs;
* the warm pool spawns once per process, is reused across runs, and
  respawns after poisoning — with the config/model payloads encoded
  once per pool lifetime (the hoist regression guard);
* the result cache returns byte-identical results warm vs cold, counts
  hits/misses/evictions, and invalidates exactly the touched image.
"""

from __future__ import annotations

import math
import random
import string
import struct

import pytest

from repro.core.persistence import SnapshotCorruptError, load_snapshot
from repro.core.pipeline import EnCore, EnCoreConfig
from repro.core.resilience import classify_stage
from repro.corpus.generator import Ec2CorpusGenerator
from repro.engine import codec
from repro.engine.artifacts import image_payload
from repro.engine.cache import ResultCache, cache_key
from repro.engine.codec import CodecError
from repro.engine.pool import (
    WarmPool,
    get_warm_pool,
    shutdown_warm_pool,
    warm_pool_stats,
)
from repro.engine.sharding import decode_task_images
from repro.obs.metrics import MetricsRegistry, use_registry


@pytest.fixture()
def registry():
    """A fresh metrics registry scoped to the test (override, not swap)."""
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


@pytest.fixture()
def fresh_pool():
    """No shared warm pool before or after the test."""
    shutdown_warm_pool()
    yield
    shutdown_warm_pool()


def assert_same(a, b):
    """Structural equality that distinguishes ``True`` from ``1``."""
    assert type(a) is type(b), (a, b)
    if isinstance(a, dict):
        assert list(a.keys()) == list(b.keys())  # order preserved
        for key in a:
            assert_same(a[key], b[key])
    elif isinstance(a, list):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
    elif isinstance(a, float):
        assert struct.pack(">d", a) == struct.pack(">d", b)
    else:
        assert a == b


def random_value(rng: random.Random, depth: int = 0):
    """One random value from the codec's domain (JSON + bytes)."""
    leaf = depth >= 3
    kind = rng.randrange(7 if leaf else 9)
    if kind == 0:
        return None
    if kind == 1:
        return rng.random() < 0.5
    if kind == 2:
        # Span fixint, int8..64 and bigint encodings.
        return rng.choice([
            rng.randrange(-32, 128),
            rng.randrange(-(2 ** 15), 2 ** 15),
            rng.randrange(-(2 ** 63), 2 ** 63),
            rng.randrange(-(2 ** 100), 2 ** 100),
        ])
    if kind == 3:
        return rng.uniform(-1e6, 1e6)
    if kind == 4:
        n = rng.randrange(0, 300)
        return "".join(rng.choices(string.printable + "éλ☃", k=n))
    if kind == 5:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
    if kind == 6:
        # Repeated strings exercise the back-reference table.
        return rng.choice(["shared-label", "mysqld/datadir", "pp"])
    if kind == 7:
        return [random_value(rng, depth + 1) for _ in range(rng.randrange(0, 6))]
    return {
        f"k{idx}-{rng.randrange(10)}": random_value(rng, depth + 1)
        for idx in range(rng.randrange(0, 6))
    }


class TestCodecRoundTrip:
    def test_randomized_round_trips(self):
        rng = random.Random(1729)
        for _ in range(200):
            value = random_value(rng)
            assert_same(codec.decode(codec.encode(value)), value)

    def test_scalar_edge_cases(self):
        for value in (None, True, False, 0, -1, 127, 128, -33,
                      2 ** 63 - 1, -(2 ** 63), 2 ** 200, -(2 ** 200),
                      "", "é" * 300, b"", b"\x00" * 70000, [], {},
                      list(range(20)), {"k": "v"}):
            assert_same(codec.decode(codec.encode(value)), value)

    def test_floats_bit_exact(self):
        values = [0.0, -0.0, 0.1, 1e-300, 1e300, 2.0 ** -1074,
                  math.pi, float("inf"), float("-inf")]
        decoded = codec.decode(codec.encode(values))
        for original, got in zip(values, decoded):
            assert struct.pack(">d", got) == struct.pack(">d", original)
        assert math.isnan(codec.decode(codec.encode(float("nan"))))

    def test_dict_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(codec.decode(codec.encode(value))) == ["z", "a", "m"]

    def test_string_table_compacts_repeats(self):
        label = "a-reasonably-long-attribute-name"
        payload = codec.encode([label] * 64)
        assert len(payload) < 64 * len(label)
        assert codec.decode(payload) == [label] * 64

    def test_bool_int_distinction_survives(self):
        decoded = codec.decode(codec.encode([True, 1, False, 0]))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_is_encoded_and_digest(self):
        payload = codec.encode({"x": 1})
        assert codec.is_encoded(payload)
        assert not codec.is_encoded(b"{\"x\": 1}")
        assert not codec.is_encoded(b"EN")
        assert len(codec.digest(payload)) == 64
        assert codec.digest(payload) == codec.digest(bytes(payload))


class TestCodecErrors:
    SAMPLE = {"images": [b"\x01\x02", "id-1"], "n": 3,
              "nested": {"f": 2.5, "flag": True}}

    def test_every_truncation_raises_codec_error(self):
        payload = codec.encode(self.SAMPLE)
        for cut in range(len(payload)):
            with pytest.raises(CodecError):
                codec.decode(payload[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(codec.encode(self.SAMPLE) + b"\x00")

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            codec.decode(b"NOPE" + codec.encode(1)[4:])

    def test_future_version_fails_forward_compatibly(self):
        payload = bytearray(codec.encode(self.SAMPLE))
        future = max(codec.SUPPORTED_VERSIONS) + 1
        payload[len(codec.MAGIC)] = future
        with pytest.raises(CodecError) as exc_info:
            codec.decode(bytes(payload))
        message = str(exc_info.value)
        assert str(future) in message
        assert str(codec.CODEC_VERSION) in message

    def test_garbage_fuzz_always_raises_typed_error(self):
        rng = random.Random(42)
        header = codec.MAGIC + bytes([codec.CODEC_VERSION])
        for _ in range(300):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 40)))
            body = header + blob if rng.random() < 0.5 else blob
            try:
                codec.decode(body)
            except CodecError:
                pass  # the only acceptable failure type

    def test_unencodable_values_rejected(self):
        for value in (object(), {1: "non-string key"}, {"s": {1, 2}},
                      complex(1, 2)):
            with pytest.raises(CodecError):
                codec.encode(value)

    def test_codec_error_is_value_error_and_maps_to_codec_stage(self):
        error = CodecError("boom")
        assert isinstance(error, ValueError)
        assert classify_stage(error) == "codec"


class TestCodecQuarantineRouting:
    def _payload(self, good_image):
        return {
            "image_ids": [good_image.image_id, "poisoned-img"],
            "images": [image_payload(good_image), b"ENCB\x01garbage!"],
        }

    def test_corrupt_image_payload_quarantines_exactly_itself(self, registry):
        encore = EnCore(EnCoreConfig(error_policy="quarantine"))
        good = Ec2CorpusGenerator(seed=5).generate_one(1)
        images = decode_task_images(
            self._payload(good), encore.assembler, shard_index=3
        )
        assert [image.image_id for image in images] == [good.image_id]
        (record,) = encore.assembler.quarantine.records
        assert record.image_id == "poisoned-img"
        assert record.stage == "codec"
        assert record.shard_index == 3
        assert registry.total("quarantine.images.total") == 1

    def test_strict_policy_propagates_codec_error(self, registry):
        encore = EnCore(EnCoreConfig(error_policy="strict"))
        good = Ec2CorpusGenerator(seed=5).generate_one(1)
        with pytest.raises(CodecError):
            decode_task_images(self._payload(good), encore.assembler, 0)


class TestWarmPool:
    def test_second_acquisition_reuses(self, registry):
        pool = WarmPool(1)
        try:
            first = pool.executor()
            assert pool.executor() is first
            assert pool.stats() == {"workers": 1, "alive": True, "spawns": 1}
            assert registry.total("pool.spawn.total") == 1
            assert registry.total("pool.reuse.total") == 1
        finally:
            pool.shutdown()

    def test_poison_respawns_next_acquisition(self, registry):
        pool = WarmPool(1)
        try:
            first = pool.executor()
            pool.poison()
            assert not pool.alive
            second = pool.executor()
            assert second is not first
            assert pool.spawns == 2
            assert registry.total("pool.respawn.total") == 1
        finally:
            pool.shutdown()

    def test_submit_survives_pool_shut_down_behind_our_back(self, registry):
        pool = WarmPool(1)
        try:
            pool.executor().shutdown(wait=True)
            assert pool.submit(abs, -3).result(timeout=60) == 3
            assert pool.spawns == 2
        finally:
            pool.shutdown()

    def test_ensure_workers_grows(self):
        pool = WarmPool(1)
        try:
            pool.executor()
            pool.ensure_workers(2)
            assert pool.workers == 2
            assert not pool.alive  # live pool was poisoned for regrowth
            pool.executor()
            assert pool.spawns == 2
        finally:
            pool.shutdown()

    def test_shared_pool_is_a_growing_singleton(self, registry, fresh_pool):
        assert warm_pool_stats() == {
            "workers": 0, "alive": False, "spawns": 0,
        }
        pool = get_warm_pool(1)
        assert get_warm_pool(2) is pool
        assert pool.workers == 2
        # warm_pool_stats never forks workers just to be inspected.
        assert warm_pool_stats()["spawns"] == 0

    def test_pool_reused_across_train_and_check(self, registry, fresh_pool):
        images = Ec2CorpusGenerator(seed=7).generate(8)
        encore = EnCore()
        encore.train(images, workers=2)
        encore.check_many(images[:4], workers=2)
        encore.train(images, workers=2)
        assert registry.total("pool.spawn.total") == 1
        assert registry.total("pool.reuse.total") >= 2


class TestEncodeHoist:
    """Satellite regression guard: one encode per pool lifetime."""

    def test_config_encoded_once_across_runs(self, registry, fresh_pool):
        images = Ec2CorpusGenerator(seed=7).generate(8)
        encore = EnCore()
        encore.train(images, workers=2)
        encore.train(images, workers=2)
        assert registry.total("codec.config.encodes.total") == 1

    def test_model_encoded_once_across_checks(self, registry, fresh_pool):
        images = Ec2CorpusGenerator(seed=7).generate(8)
        encore = EnCore()
        encore.train(images, workers=2)
        encore.check_many(images, workers=2)
        encore.check_many(images, workers=2)
        assert registry.total("codec.model.encodes.total") == 1


class TestResultCache:
    def test_key_depends_on_config_and_content(self):
        image = Ec2CorpusGenerator(seed=3).generate_one(1)
        touched = image.copy(image.image_id)
        touched.fs.add_file("/etc/touched", owner="root", group="root",
                            mode=0o644)
        assert cache_key("cfg-a", image) == cache_key("cfg-a", image)
        assert cache_key("cfg-a", image) != cache_key("cfg-b", image)
        assert cache_key("cfg-a", image) != cache_key("cfg-a", touched)

    def test_memory_layer_hit_miss_metrics(self, registry):
        cache = ResultCache()
        image = Ec2CorpusGenerator(seed=3).generate_one(1)
        key = cache_key("cfg", image)
        assert cache.lookup(key, image) is None
        cache.store(key, "assembled-sentinel", 7)
        assert cache.lookup(key, image) == ("assembled-sentinel", 7)
        assert registry.total("cache.miss.total") == 1
        assert registry.total("cache.hit.total") == 1

    def test_lru_evicts_and_counts(self, registry):
        cache = ResultCache(memory_entries=2)
        image = Ec2CorpusGenerator(seed=3).generate_one(1)
        for n in range(3):
            cache.store(f"key-{n}", f"sys-{n}", n)
        assert cache.stats()["memory_entries"] == 2
        assert registry.total("cache.evict.total") == 1
        assert cache.lookup("key-0", image) is None  # oldest evicted

    def test_disk_layer_revives_across_instances(self, tmp_path, registry):
        root = tmp_path / "cache"
        encore = EnCore()
        encore.set_cache(ResultCache(root))
        image = Ec2CorpusGenerator(seed=3).generate_one(1)
        encore.train([image])
        key = encore.assembler._cache_key(image)
        entry = root / key[:2] / f"{key}.encb"
        assert entry.exists()
        assert codec.is_encoded(entry.read_bytes())

        fresh = ResultCache(root)  # empty memory layer, same disk
        revived = fresh.lookup(key, image)
        assert revived is not None
        system, parsed_entries = revived
        assert parsed_entries > 0
        assert system.image is image  # rows re-attached to our object
        # Promoted into memory: a second lookup needs no disk read.
        assert fresh.stats()["memory_entries"] == 1

    def test_corrupt_disk_entry_reads_as_miss(self, tmp_path, registry):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        image = Ec2CorpusGenerator(seed=3).generate_one(1)
        key = cache_key("cfg", image)
        entry = root / key[:2] / f"{key}.encb"
        entry.parent.mkdir(parents=True)
        entry.write_bytes(codec.MAGIC + bytes([codec.CODEC_VERSION]) + b"\xc1")
        assert cache.lookup(key, image) is None
        assert registry.total("cache.corrupt.total") == 1
        assert not entry.exists()  # corrupt entry removed


class TestCachedRuns:
    @pytest.fixture(scope="class")
    def corpus(self):
        return Ec2CorpusGenerator(seed=11).generate(12)

    def test_warm_run_identical_and_all_hits(self, tmp_path, corpus,
                                             fresh_pool):
        rules = EnCore().train(corpus).rules.to_json()
        root = tmp_path / "cache"

        with use_registry(MetricsRegistry()) as cold_registry:
            cold = EnCore()
            cold.set_cache(ResultCache(root))
            cold_rules = cold.train(corpus).rules.to_json()
            assert cold_registry.total("cache.miss.total") == len(corpus)
            assert cold_registry.total("cache.hit.total") == 0

        with use_registry(MetricsRegistry()) as warm_registry:
            warm = EnCore()
            warm.set_cache(ResultCache(root))
            warm_rules = warm.train(corpus).rules.to_json()
            assert warm_registry.total("cache.hit.total") == len(corpus)
            assert warm_registry.total("cache.miss.total") == 0

        assert rules == cold_rules == warm_rules

    def test_sharded_warm_run_hits_in_coordinator(self, tmp_path, corpus,
                                                  fresh_pool):
        rules = EnCore().train(corpus).rules.to_json()
        root = tmp_path / "cache"
        primer = EnCore()
        primer.set_cache(ResultCache(root))
        primer.train(corpus)

        with use_registry(MetricsRegistry()) as registry:
            warm = EnCore()
            warm.set_cache(ResultCache(root))
            warm_rules = warm.train(corpus, workers=2).rules.to_json()
            assert registry.total("cache.hit.total") == len(corpus)
            # Every hit resolved in the coordinator pre-pass — nothing
            # was worth shipping to a worker.
            assert registry.total("assemble.shards.total") == 0
        assert warm_rules == rules

    def test_touched_image_invalidates_exactly_itself(self, tmp_path, corpus,
                                                      fresh_pool):
        root = tmp_path / "cache"
        primer = EnCore()
        primer.set_cache(ResultCache(root))
        primer.train(corpus)

        touched = corpus[0].copy(corpus[0].image_id)
        touched.fs.add_file("/etc/touched.conf", owner="root", group="root",
                            mode=0o644)
        with use_registry(MetricsRegistry()) as registry:
            rerun = EnCore()
            rerun.set_cache(ResultCache(root))
            rerun.train([touched] + list(corpus[1:]))
            assert registry.total("cache.miss.total") == 1
            assert registry.total("cache.hit.total") == len(corpus) - 1

    def test_check_path_hits_on_recheck(self, tmp_path, corpus):
        encore = EnCore()
        encore.train(corpus)
        encore.set_cache(ResultCache(tmp_path / "cache"))
        target = Ec2CorpusGenerator(seed=11).generate_one(999)

        with use_registry(MetricsRegistry()) as first:
            cold_report = encore.check(target)
            assert first.total("cache.miss.total") == 1
        with use_registry(MetricsRegistry()) as second:
            warm_report = encore.check(target)
            assert second.total("cache.hit.total") == 1
            assert second.total("cache.miss.total") == 0
        assert cold_report.to_dict() == warm_report.to_dict()


class TestBinarySnapshots:
    def test_encb_round_trips_and_matches_json(self, tmp_path, trained_encore):
        binary_path = tmp_path / "model.encb"
        json_path = tmp_path / "model.json"
        trained_encore.save_model(binary_path)
        trained_encore.save_model(json_path)
        assert codec.is_encoded(binary_path.read_bytes())
        assert not codec.is_encoded(json_path.read_bytes())
        from_binary = load_snapshot(binary_path)
        from_json = load_snapshot(json_path)
        assert from_binary.rules.to_json() == from_json.rules.to_json()
        assert from_binary.dataset_fingerprint == from_json.dataset_fingerprint

    def test_corrupt_binary_snapshot_raises_typed_error(self, tmp_path,
                                                        trained_encore):
        path = tmp_path / "model.encb"
        trained_encore.save_model(path)
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_serve_loads_binary_snapshot_and_reports_data_plane(
        self, tmp_path, trained_encore, held_out_image
    ):
        from repro.serve.server import DetectionServer, ServeConfig

        snapshot = tmp_path / "model.encb"
        trained_encore.save_model(snapshot)
        config = ServeConfig(snapshot=snapshot, port=0,
                             cache_dir=tmp_path / "cache")
        server = DetectionServer(config)
        try:
            status = server.statusz()
            plane = status["data_plane"]
            assert plane["pool"]["spawns"] == 0  # never inspect-forked
            assert plane["cache"]["root"] == str(tmp_path / "cache")
            assert plane["cache"]["hits"] == 0
        finally:
            server.server_close()
