"""Tests for the observability subsystem (repro.obs)."""

import io
import json

import pytest

from repro.core.pipeline import EnCore
from repro.corpus.generator import Ec2CorpusGenerator
from repro.obs import configure, get_logger, render_stats
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    set_registry,
)
from repro.obs.tracing import Tracer, set_tracer, span


class FakeClock:
    """Deterministic clock: each read advances by *step* seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture(autouse=True)
def _no_global_tracer():
    yield
    set_tracer(None)


class TestCounter:
    def test_inc_accumulates(self, registry):
        registry.counter("x.y.total").inc()
        registry.counter("x.y.total").inc(4)
        assert registry.value("x.y.total") == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_labels_are_distinct_series(self, registry):
        registry.counter("parse.entries.total", app="mysql").inc(3)
        registry.counter("parse.entries.total", app="php").inc(2)
        assert registry.value("parse.entries.total", app="mysql") == 3
        assert registry.value("parse.entries.total", app="php") == 2
        assert registry.total("parse.entries.total") == 5

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_inc(self, registry):
        gauge = registry.gauge("queue.depth")
        gauge.set(10)
        gauge.inc(-3)
        assert registry.value("queue.depth") == 7


class TestHistogram:
    def test_observe_buckets(self, registry):
        hist = registry.histogram("t.seconds", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # non-cumulative: <=1.0, <=10.0, +Inf
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_default_buckets(self, registry):
        assert registry.histogram("x.seconds").buckets == DEFAULT_TIME_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))


class TestMerge:
    def test_counters_add_histograms_fold_gauges_overwrite(self, registry):
        other = MetricsRegistry()
        registry.counter("c", app="a").inc(2)
        other.counter("c", app="a").inc(3)
        other.counter("c", app="b").inc(7)
        registry.gauge("g").set(1)
        other.gauge("g").set(9)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        other.histogram("h", buckets=(1.0,)).observe(2.0)
        registry.merge(other)
        assert registry.value("c", app="a") == 5
        assert registry.value("c", app="b") == 7
        assert registry.value("g") == 9
        hist = registry.histogram("h", buckets=(1.0,))
        assert hist.count == 2 and hist.bucket_counts == [1, 1]

    def test_bucket_mismatch_rejected(self, registry):
        other = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.1)
        other.histogram("h", buckets=(2.0,)).observe(0.1)
        with pytest.raises(ValueError):
            registry.merge(other)


class TestSerialization:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("parse.entries.total", app="mysql").inc(12)
        registry.gauge("queue.depth").set(3)
        registry.histogram("train.seconds", buckets=(0.1, 1.0)).observe(0.25)
        return registry

    def test_json_round_trip(self):
        registry = self._populated()
        restored = MetricsRegistry.from_json(registry.to_json())
        assert restored.to_dict() == registry.to_dict()

    def test_round_trip_then_merge(self):
        registry = self._populated()
        restored = MetricsRegistry.from_json(registry.to_json())
        restored.merge(self._populated())
        assert restored.value("parse.entries.total", app="mysql") == 24

    def test_prometheus_exposition(self):
        text = self._populated().to_prometheus()
        assert "# TYPE parse_entries_total counter" in text
        assert 'parse_entries_total{app="mysql"} 12' in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE train_seconds histogram" in text
        assert 'train_seconds_bucket{le="+Inf"} 1' in text
        assert "train_seconds_count 1" in text

    def test_prometheus_label_values_escaped(self):
        # Exposition format: backslash, double-quote and newline must be
        # escaped inside label values (in that order — backslash first).
        registry = MetricsRegistry()
        registry.counter("c.total", path='we"ird\\app\nline').inc()
        text = registry.to_prometheus()
        assert 'c_total{path="we\\"ird\\\\app\\nline"} 1' in text
        assert "\nline" not in text.replace("\\nline", "")  # no raw newline

    def test_prometheus_exposition_golden(self):
        """Byte-exact conformance pin for the text exposition format.

        The golden file freezes everything a scraper depends on: exactly
        one ``# TYPE`` line per family, label-value escaping, cumulative
        ``_bucket`` series ending in ``le="+Inf"``, ``_sum``/``_count``
        suffixes, and deterministic name/labelset ordering.  If this
        test fails, either fix the regression or consciously re-bless
        the golden — scrape configs parse this text.
        """
        from pathlib import Path

        registry = MetricsRegistry()
        registry.counter("serve.requests.total",
                         route="/v1/check", status="200").inc(3)
        registry.counter("serve.requests.total",
                         route="/v1/explain", status="400").inc(1)
        registry.counter("parse.errors.total",
                         path='C:\\conf "main"\nnext').inc(2)
        registry.gauge("serve.inflight").set(4)
        latency = registry.histogram(
            "serve.request.latency", buckets=(0.25, 0.5, 2.0),
            route="/v1/check", status="200",
        )
        for value in (0.125, 0.375, 1.0, 4.0):
            latency.observe(value)
        seconds = registry.histogram("check.seconds", buckets=(0.5, 1.0))
        seconds.observe(0.25)
        seconds.observe(0.75)
        golden = (Path(__file__).parent / "data"
                  / "prometheus_exposition.golden").read_text()
        assert registry.to_prometheus() == golden


class TestTracing:
    def test_span_nesting_with_fake_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("train") as train_span:
            with tracer.span("train.assemble", systems=5):
                pass
            with tracer.span("train.infer") as infer_span:
                infer_span.annotate(rules=7)
        assert train_span.duration == 5.0  # reads at t=0 and t=5
        tree = tracer.to_dict()["spans"]
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "train"
        children = [c["name"] for c in root["children"]]
        assert children == ["train.assemble", "train.infer"]
        assert root["children"][1]["attributes"] == {"rules": 7}

    def test_global_span_records_metric_without_tracer(self):
        registry = set_registry(MetricsRegistry())
        try:
            with span("stage.one", items=3) as s:
                pass
            assert s.end is not None
            hist = registry.histogram("stage.one.seconds")
            assert hist.count == 1
        finally:
            set_registry(MetricsRegistry())

    def test_global_span_feeds_installed_tracer(self):
        registry = set_registry(MetricsRegistry())
        tracer = Tracer(clock=FakeClock())
        set_tracer(tracer)
        try:
            with span("outer"):
                with span("inner"):
                    pass
        finally:
            set_tracer(None)
            set_registry(MetricsRegistry())
        assert len(tracer.roots) == 1
        assert tracer.roots[0].children[0].name == "inner"
        assert registry.histogram("inner.seconds").count == 1

    def test_trace_save_is_valid_json(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        path = tracer.save(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["spans"][0]["name"] == "a"

    def test_span_closed_and_annotated_on_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("detect"):
                raise ValueError("bad target")
        (root,) = tracer.roots
        assert root.attributes["error"] == "ValueError"
        assert root.end is not None
        assert root.duration > 0
        # The span stack unwound: the next span is a fresh root.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["detect", "after"]

    def test_global_span_annotates_error(self):
        registry = set_registry(MetricsRegistry())
        tracer = Tracer(clock=FakeClock())
        set_tracer(tracer)
        try:
            with pytest.raises(KeyError):
                with span("check"):
                    raise KeyError("missing")
        finally:
            set_tracer(None)
            set_registry(MetricsRegistry())
        assert tracer.roots[0].attributes["error"] == "KeyError"
        assert registry.histogram("check.seconds").count == 1


class TestLogging:
    def test_key_value_lines(self):
        stream = io.StringIO()
        configure(verbosity=1, stream=stream)
        get_logger("test").info("model.trained", systems=25, note="a b")
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "event=model.trained" in line
        assert "systems=25" in line
        assert 'note="a b"' in line

    def test_json_lines(self):
        stream = io.StringIO()
        configure(verbosity=1, stream=stream, json_lines=True)
        get_logger("test").info("evt", n=1)
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "evt" and payload["n"] == 1

    def test_verbosity_gates(self):
        stream = io.StringIO()
        configure(verbosity=0, stream=stream)
        get_logger("test").info("hidden")
        get_logger("test").warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out and "shown" in out


class TestPipelineTelemetry:
    """End-to-end: train + detect populate the registry (tentpole smoke)."""

    @pytest.fixture(scope="class")
    def run_registry(self):
        registry = set_registry(MetricsRegistry())
        try:
            images = Ec2CorpusGenerator(seed=7).generate(20)
            encore = EnCore()
            model = encore.train(images)
            target = Ec2CorpusGenerator(seed=7).generate_one(999)
            encore.check(target)
            yield registry, model
        finally:
            set_registry(MetricsRegistry())

    def test_rules_kept_metric_nonzero(self, run_registry):
        registry, _ = run_registry
        assert registry.total("infer.rules.kept") > 0
        assert registry.total("infer.pairs.candidate") > 0

    def test_detect_warnings_metric_nonzero(self, run_registry):
        registry, _ = run_registry
        assert registry.total("detect.targets.total") == 1
        assert registry.total("detect.warnings.total") > 0

    def test_attribute_growth_counters(self, run_registry):
        registry, _ = run_registry
        original = registry.total("assemble.attributes.original")
        augmented = registry.total("assemble.attributes.augmented")
        assert original > 0
        assert augmented > original  # Table 2: environment integration grows >2x

    def test_stage_timing_histograms(self, run_registry):
        registry, _ = run_registry
        for stage in ("train", "train.assemble", "train.infer", "detect"):
            assert registry.histogram(f"{stage}.seconds").count >= 1, stage

    def test_model_summary_surfaces_telemetry(self, run_registry):
        _, model = run_registry
        summary = model.summary()
        assert summary["telemetry"]["train_seconds"] > 0
        assert summary["telemetry"]["infer_seconds"] > 0

    def test_render_stats_table(self, run_registry):
        registry, _ = run_registry
        text = render_stats(registry)
        assert "stage wall times" in text
        assert "attribute growth" in text
        assert "rule inference" in text
        assert "detection" in text
        assert "growth:" in text
