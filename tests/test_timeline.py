"""Timeline ring buffers, window queries, merge algebra, and sampling.

Covers the PR's tentpole invariants:

* bounded memory — rings never exceed capacity, the series set never
  exceeds ``max_series``, and long sampling runs hold allocation flat;
* correct window math — counter deltas/rates, gauge change, histogram
  window stats, and the no-data (``None``) vs zero distinction;
* associative merge across shards — ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)``;
* concurrent sampling — an 8-thread serve-style workload sampled
  mid-flight loses and double-counts nothing (satellite);
* the typed ``MetricKindError`` on merge collisions (satellite).
"""

import json
import threading
import tracemalloc

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricKindError,
    MetricsRegistry,
    merge_snapshot,
    use_registry,
)
from repro.obs.timeline import (
    Ring,
    Timeline,
    TimelineSampler,
    series_id,
)


class TestRing:
    def test_keeps_insertion_order_until_full(self):
        ring = Ring(4)
        for i in range(3):
            ring.append((i,))
        assert list(ring) == [(0,), (1,), (2,)]
        assert ring.last() == (2,)

    def test_overwrites_oldest_when_full(self):
        ring = Ring(3)
        for i in range(7):
            ring.append((i,))
        assert len(ring) == 3
        assert list(ring) == [(4,), (5,), (6,)]
        assert ring.last() == (6,)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Ring(0)


class TestSeriesId:
    def test_bare_and_labelled(self):
        assert series_id("a.total") == "a.total"
        sid = series_id("a.total", (("route", "/x"), ("status", "200")))
        assert sid == "a.total{route=/x,status=200}"


class TestRecording:
    def test_counter_rate_from_consecutive_points(self):
        timeline = Timeline()
        timeline.record_counter("c", {}, 10.0, t=100.0)
        timeline.record_counter("c", {}, 30.0, t=110.0)
        points = timeline.series["c"].points()
        assert points[0][2] == 0.0  # first point has no predecessor
        assert points[1][2] == pytest.approx(2.0)

    def test_counter_reset_clamps_rate_to_zero(self):
        timeline = Timeline()
        timeline.record_counter("c", {}, 50.0, t=100.0)
        timeline.record_counter("c", {}, 5.0, t=110.0)  # process restarted
        assert timeline.series["c"].points()[1][2] == 0.0

    def test_histogram_reduced_to_percentiles(self):
        timeline = Timeline()
        histogram = Histogram((0.1, 1.0))
        for value in (0.05, 0.05, 0.5):
            histogram.observe(value)
        timeline.record_histogram("h", {}, histogram, t=1.0)
        t, count, total, p50, p99 = timeline.series["h"].points()[0]
        assert count == 3
        assert total == pytest.approx(0.6)
        assert 0.0 < p50 <= 0.1
        assert p99 <= 1.0

    def test_empty_histogram_records_null_percentiles(self):
        timeline = Timeline()
        timeline.record_histogram("h", {}, Histogram((1.0,)), t=1.0)
        point = timeline.series["h"].points()[0]
        assert point[1] == 0 and point[3] is None and point[4] is None

    def test_ring_bound_holds_over_many_samples(self):
        timeline = Timeline(capacity=16)
        for i in range(1000):
            timeline.record_counter("c", {}, float(i), t=float(i))
        assert len(timeline.series["c"].ring) == 16

    def test_max_series_cap_counts_drops(self):
        timeline = Timeline(max_series=3)
        for i in range(10):
            timeline.record_counter("c", {"i": str(i)}, 1.0, t=1.0)
        assert len(timeline.series) == 3
        assert timeline.dropped_series == 7


class TestSampleRegistry:
    def test_samples_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("req.total", route="/a").inc(4)
        registry.gauge("depth").set(7)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        timeline = Timeline()
        sampled = timeline.sample_registry(registry, t=1.0)
        assert sampled == 3
        assert timeline.samples == 1
        assert timeline.latest_value("req.total") == 4.0
        assert timeline.latest_value("depth") == 7.0
        assert timeline.latest_value("lat", stat="count") == 1.0


class TestWindowQueries:
    @pytest.fixture()
    def timeline(self):
        timeline = Timeline()
        registry = MetricsRegistry()
        counter_a = registry.counter("req.total", route="/a")
        counter_b = registry.counter("req.total", route="/b")
        gauge = registry.gauge("rss")
        histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for step in range(5):
            counter_a.inc(10)
            counter_b.inc(2)
            gauge.set(100 + step * 10)
            histogram.observe(0.05)
            timeline.sample_registry(registry, t=100.0 + step * 5)
        return timeline

    def test_counter_delta_sums_label_series(self, timeline):
        # Window covers the last three points (t=110..120): 2 steps.
        assert timeline.counter_delta("req.total", 10.0, now=120.0) == 24.0

    def test_counter_delta_respects_label_filter(self, timeline):
        delta = timeline.counter_delta(
            "req.total", 10.0, labels={"route": "/a"}, now=120.0
        )
        assert delta == 20.0

    def test_single_point_window_is_no_data(self, timeline):
        assert timeline.counter_delta("req.total", 1.0, now=120.0) is None
        assert timeline.rate("req.total", 1.0, now=120.0) is None

    def test_unknown_metric_is_no_data(self, timeline):
        assert timeline.counter_delta("nope", 60.0) is None
        assert timeline.latest_value("nope") is None

    def test_rate_is_delta_over_span(self, timeline):
        rate = timeline.rate("req.total", 10.0, now=120.0)
        assert rate == pytest.approx(24.0 / 10.0)

    def test_gauge_change_per_second(self, timeline):
        change = timeline.gauge_change("rss", 10.0, now=120.0)
        assert change == pytest.approx(2.0)  # +10 per 5 s step

    def test_histogram_window_counts_deltas(self, timeline):
        stats = timeline.histogram_window("lat", 10.0, now=120.0)
        assert stats["count"] == 2.0
        assert stats["mean"] == pytest.approx(0.05)
        assert stats["p50"] is not None

    def test_latest_value_takes_max_for_percentiles(self, timeline):
        assert timeline.latest_value("lat", stat="p99") is not None


def _sampled_timeline(values, capacity=8):
    timeline = Timeline(capacity=capacity)
    for t, value in values:
        timeline.record_counter("c", {}, value, t=t)
    return timeline


class TestMerge:
    def test_counter_values_sum_newest_aligned(self):
        a = _sampled_timeline([(1.0, 10.0), (2.0, 20.0)])
        b = _sampled_timeline([(1.5, 5.0), (2.5, 7.0)])
        merged = a.merge(b)
        points = merged.series["c"].points()
        assert [p[1] for p in points] == [15.0, 27.0]
        assert [p[0] for p in points] == [1.5, 2.5]

    def test_unequal_lengths_treat_missing_as_zero(self):
        a = _sampled_timeline([(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)])
        b = _sampled_timeline([(2.9, 4.0)])
        merged = a.merge(b)
        assert [p[1] for p in merged.series["c"].points()] == [10.0, 20.0, 34.0]

    def test_merge_is_associative(self):
        def build():
            return (
                _sampled_timeline([(1.0, 1.0), (2.0, 2.0), (3.0, 4.0)]),
                _sampled_timeline([(1.1, 10.0), (2.1, 20.0)]),
                _sampled_timeline([(2.2, 100.0), (3.2, 200.0), (4.2, 400.0)]),
            )

        a1, b1, c1 = build()
        left = a1.merge(b1).merge(c1)
        a2, b2, c2 = build()
        right = a2.merge(b2.merge(c2))
        assert left.to_dict()["series"] == right.to_dict()["series"]

    def test_histogram_merge_sums_population_maxes_tails(self):
        def record(timeline, t, values):
            histogram = Histogram((0.1, 1.0))
            for value in values:
                histogram.observe(value)
            timeline.record_histogram("h", {}, histogram, t=t)

        a, b = Timeline(), Timeline()
        record(a, 1.0, [0.05])
        record(b, 1.1, [0.5, 0.5])
        merged = a.merge(b)
        t, count, total, p50, p99 = merged.series["h"].points()[0]
        assert count == 3 and total == pytest.approx(1.05)
        assert p50 is not None and p99 is not None
        # the merged tail is the conservative (max) side's estimate
        assert p99 >= 0.1

    def test_kind_collision_raises(self):
        a, b = Timeline(), Timeline()
        a.record_counter("x", {}, 1.0, t=1.0)
        b.record_gauge("x", {}, 1.0, t=1.0)
        with pytest.raises(ValueError, match="cannot merge series"):
            a.merge(b)

    def test_sharded_merge_equals_combined_registry(self):
        """Per-shard timelines merged == one timeline over the fold."""
        shard_registries = [MetricsRegistry() for _ in range(3)]
        for i, registry in enumerate(shard_registries):
            registry.counter("work.total").inc(10 * (i + 1))
        shard_timelines = []
        for i, registry in enumerate(shard_registries):
            timeline = Timeline()
            timeline.sample_registry(registry, t=100.0)
            shard_timelines.append(timeline)
        merged = shard_timelines[0]
        for timeline in shard_timelines[1:]:
            merged = merged.merge(timeline)
        assert merged.latest_value("work.total") == 60.0


class TestJsonRoundTrip:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c", route="/a").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        timeline = Timeline(capacity=4)
        timeline.sample_registry(registry, t=1.0)
        timeline.sample_registry(registry, t=2.0)
        blob = json.dumps(timeline.to_dict(), sort_keys=True)
        restored = Timeline.from_dict(json.loads(blob))
        assert restored.to_dict() == timeline.to_dict()
        assert restored.capacity == 4


class TestSampler:
    def test_maybe_sample_respects_interval(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        clock = iter([100.0, 101.0, 106.0]).__next__
        sampler = TimelineSampler(registry, interval_s=5.0, clock=clock)
        assert sampler.sample() == 1              # t=100
        assert sampler.maybe_sample() is False    # t=101: too soon
        assert sampler.maybe_sample() is True     # t=106: due
        assert sampler.timeline.samples == 2

    def test_follows_process_registry_when_unbound(self):
        sampler = TimelineSampler(interval_s=1.0)
        private = MetricsRegistry()
        private.counter("mine").inc(9)
        with use_registry(private):
            sampler.sample(now=1.0)
        assert sampler.timeline.latest_value("mine") == 9.0

    def test_sample_under_lock(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        lock = threading.Lock()
        sampler = TimelineSampler(registry, interval_s=1.0, lock=lock)
        assert sampler.sample(now=1.0) == 1


class TestConcurrentSampling:
    """Satellite: serve-style 8-thread workload sampled mid-flight."""

    THREADS = 8
    ITERATIONS = 200

    def test_no_lost_or_double_counted_increments(self):
        process_registry = MetricsRegistry()
        fold_lock = threading.Lock()
        timeline = Timeline(capacity=4096)
        sampler = TimelineSampler(
            process_registry, timeline=timeline,
            interval_s=1e-9, lock=fold_lock,
        )
        stop = threading.Event()

        def worker(index: int) -> None:
            # Exactly the serve request pattern: a private registry per
            # unit of work, folded under the shared lock.
            for _ in range(self.ITERATIONS):
                private = MetricsRegistry()
                private.counter("req.total",
                                route=f"/r{index % 2}").inc()
                private.histogram(
                    "lat", buckets=(0.001, 0.01)
                ).observe(0.0005)
                with fold_lock:
                    process_registry.merge(private)

        def sample_loop() -> None:
            t = 0.0
            while not stop.is_set():
                t += 1.0
                sampler.sample(now=t)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        sampler_thread = threading.Thread(target=sample_loop)
        sampler_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        sampler_thread.join()
        last_ts = [
            series.ring.last()[0] for series in timeline.series.values()
        ]
        sampler.sample(now=(max(last_ts) if last_ts else 0.0) + 1.0)

        expected = self.THREADS * self.ITERATIONS
        # The final sample's totals equal the registry's ground truth:
        # nothing lost, nothing double-counted.
        assert timeline.latest_value("req.total") == float(expected)
        assert timeline.latest_value("lat", stat="count") == float(expected)
        assert process_registry.total("req.total") == expected
        # Every sampled cumulative value is monotonically non-decreasing
        # — a consistent cut can never show a counter going backwards.
        for sid, series in timeline.series.items():
            if series.kind != "counter":
                continue
            values = [point[1] for point in series.ring]
            assert values == sorted(values), sid


class TestFlatMemory:
    def test_long_sampling_run_holds_allocation_flat(self):
        registry = MetricsRegistry()
        for route in ("/a", "/b", "/c"):
            registry.counter("req.total", route=route).inc()
        registry.histogram("lat", buckets=(0.01, 0.1)).observe(0.05)
        timeline = Timeline(capacity=64)
        sampler = TimelineSampler(registry, timeline=timeline, interval_s=1.0)

        for i in range(2000):
            sampler.sample(now=float(i))
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        for i in range(2000, 10000):
            sampler.sample(now=float(i))
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # Rings are full after the warm-up, so 8k further samples must
        # not grow the timeline: generous slack for interpreter noise.
        assert current - baseline < 256 * 1024
        assert all(
            len(series.ring) <= 64 for series in timeline.series.values()
        )
        assert timeline.samples == 10000


class TestMetricKindErrorSatellite:
    def test_accessor_collision_is_typed(self):
        registry = MetricsRegistry()
        registry.counter("x.total").inc()
        with pytest.raises(MetricKindError) as excinfo:
            registry.gauge("x.total")
        error = excinfo.value
        assert error.metric == "x.total"
        assert error.bound == "counter"
        assert error.requested == "gauge"
        assert "x.total" in str(error)
        assert isinstance(error, ValueError)  # backward compatibility

    def test_merge_snapshot_collision_names_the_metric(self):
        ours = MetricsRegistry()
        ours.counter("shared.metric").inc()
        theirs = MetricsRegistry()
        theirs.gauge("shared.metric").set(5)
        with use_registry(ours):
            with pytest.raises(MetricKindError) as excinfo:
                merge_snapshot(theirs.to_dict())
        assert excinfo.value.metric == "shared.metric"

    def test_registry_merge_collision_histogram_vs_counter(self):
        ours = MetricsRegistry()
        ours.histogram("h", buckets=(1.0,)).observe(0.5)
        theirs = MetricsRegistry()
        theirs.counter("h").inc()
        with pytest.raises(MetricKindError):
            ours.merge(theirs)
