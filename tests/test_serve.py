"""Tests for the serve daemon (repro.serve): API, SLOs, admission, reload."""

import json
import math
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.pipeline import EnCore
from repro.obs.ledger import Ledger
from repro.obs.metrics import Histogram
from repro.serve.admission import AdmissionController
from repro.serve.server import DetectionServer, ServeConfig
from repro.sysmodel.snapshot import image_to_dict, save_image

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- HTTP plumbing --------------------------------------------------------------


def post(base, route, body, headers=None):
    """(status, parsed-JSON body, response headers) for one POST."""
    request = urllib.request.Request(
        base + route, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def get(base, route):
    """(status, raw text) for one GET."""
    try:
        with urllib.request.urlopen(base + route, timeout=60) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def boot(config):
    """A DetectionServer serving on a background thread."""
    server = DetectionServer(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


# -- fixtures -------------------------------------------------------------------


@pytest.fixture(scope="module")
def serve_ctx(tmp_path_factory, trained_encore, held_out_image):
    """One daemon for the whole module, plus its snapshot and ledger."""
    tmp = tmp_path_factory.mktemp("serve")
    snapshot = tmp / "model.json"
    trained_encore.save_model(snapshot)
    target_path = tmp / "target.json"
    save_image(held_out_image, target_path)
    config = ServeConfig(
        snapshot=snapshot,
        port=0,
        max_inflight=4,
        max_queue=2,
        queue_timeout_s=0.2,
        ledger_path=tmp / "ledger.jsonl",
    )
    server = boot(config)
    ctx = SimpleNamespace(
        server=server,
        base=f"http://127.0.0.1:{server.server_port}",
        snapshot=snapshot,
        target_path=target_path,
        ledger=Ledger(tmp / "ledger.jsonl"),
    )
    yield ctx
    server.stop()
    server.server_close()


@pytest.fixture()
def target_body(held_out_image):
    return {"image": image_to_dict(held_out_image)}


# -- Histogram.quantile (satellite) ---------------------------------------------


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        # No observations means no honest percentile: the contract is
        # NaN, and JSON surfaces (the serve SLO summary) report null.
        assert math.isnan(Histogram((1.0, 2.0)).quantile(0.5))
        assert math.isnan(Histogram((1.0, 2.0)).quantile(0.0))

    def test_out_of_range_rejected(self):
        histogram = Histogram((1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_nan_q_rejected(self):
        histogram = Histogram((1.0,))
        histogram.observe(0.5)
        with pytest.raises(ValueError):
            histogram.quantile(math.nan)

    def test_boundary_q_accepted_when_populated(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(0.5)
        assert histogram.quantile(0.0) >= 0.0
        assert histogram.quantile(1.0) <= 2.0

    def test_linear_interpolation_within_bucket(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        # target rank 1.5 lands in the (1, 2] bucket, halfway through.
        assert histogram.quantile(0.5) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(0.2)
        histogram.observe(0.4)
        assert histogram.quantile(0.5) == pytest.approx(0.5)

    def test_overflow_clamps_to_highest_finite_bound(self):
        histogram = Histogram((1.0, 2.0))
        for value in (100.0, 200.0, 300.0):
            histogram.observe(value)
        assert histogram.quantile(0.99) == 2.0

    def test_monotone_in_q(self):
        histogram = Histogram((0.01, 0.1, 1.0, 10.0))
        for i in range(100):
            histogram.observe(0.005 * (i + 1))
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)


# -- AdmissionController (unit) -------------------------------------------------


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert admission.inflight == 2

    def test_sheds_when_queue_full(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        assert admission.try_acquire()
        assert not admission.try_acquire()
        assert admission.shed_total == 1

    def test_queue_timeout_sheds(self):
        clock = iter([0.0, 10.0]).__next__
        admission = AdmissionController(
            max_inflight=1, max_queue=1, queue_timeout_s=1.0, clock=clock
        )
        assert admission.try_acquire()
        assert not admission.try_acquire()  # deadline passes immediately
        assert admission.shed_total == 1
        assert admission.queued == 0

    def test_release_wakes_queued_waiter(self):
        admission = AdmissionController(
            max_inflight=1, max_queue=1, queue_timeout_s=5.0
        )
        assert admission.try_acquire()
        results = []

        def waiter():
            results.append(admission.try_acquire())

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 2.0
        while admission.queued == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        admission.release()
        thread.join(timeout=2.0)
        assert results == [True]
        admission.release()
        assert admission.inflight == 0

    def test_unmatched_release_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_slot_contextmanager_releases_only_if_taken(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        with admission.slot() as admitted:
            assert admitted
            with admission.slot() as nested:
                assert not nested
            assert admission.inflight == 1
        assert admission.inflight == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout_s=-1.0)


# -- the HTTP API ---------------------------------------------------------------


class TestServeApi:
    def test_check_matches_cli_byte_for_byte(self, serve_ctx, target_body):
        status, body, _ = post(serve_ctx.base, "/v1/check", target_body)
        assert status == 200
        http_text = json.dumps(body["report"], indent=1)
        # The same image + snapshot through the real CLI, fresh process.
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check",
             "--model", str(serve_ctx.snapshot),
             "--target", str(serve_ctx.target_path),
             "--json", "--no-ledger"],
            capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                                "PATH": "/usr/bin:/bin"},
        )
        out = proc.stdout
        cli_text = out[out.index("{"):].rstrip("\n")
        assert http_text == cli_text

    def test_batch_check(self, serve_ctx, small_corpus):
        body = {"images": [image_to_dict(image) for image in small_corpus[:3]]}
        status, parsed, _ = post(serve_ctx.base, "/v1/check", body)
        assert status == 200
        assert len(parsed["reports"]) == 3
        assert all("warnings" in report for report in parsed["reports"])

    def test_explain_agrees_with_check(self, serve_ctx, target_body):
        status, checked, _ = post(serve_ctx.base, "/v1/check", target_body)
        assert status == 200
        if not checked["report"]["warnings"]:
            pytest.skip("held-out image produced no warnings")
        first = checked["report"]["warnings"][0]
        status, explained, _ = post(
            serve_ctx.base, "/v1/explain",
            {**target_body, "attribute": first["attribute"]},
        )
        assert status == 200
        assert explained["warning_count"] == checked["report"]["warning_count"]
        assert explained["matches"], "first warning's attribute must match"
        assert explained["matches"][0]["rank"] == first["rank"]

    def test_explain_unknown_attribute_empty_matches(self, serve_ctx,
                                                     target_body):
        status, body, _ = post(
            serve_ctx.base, "/v1/explain",
            {**target_body, "attribute": "definitely-not-an-attribute"},
        )
        assert status == 200
        assert body["matches"] == []

    def test_suggest_returns_report_and_suggestions(self, serve_ctx,
                                                    target_body):
        status, body, _ = post(serve_ctx.base, "/v1/suggest",
                               {**target_body, "limit": 5})
        assert status == 200
        assert "report" in body
        assert len(body["suggestions"]) <= 5
        for suggestion in body["suggestions"]:
            assert {"action", "attribute", "proposal",
                    "confidence", "rationale"} <= set(suggestion)

    def test_request_id_propagated_and_generated(self, serve_ctx,
                                                 target_body):
        status, body, headers = post(
            serve_ctx.base, "/v1/check", target_body,
            headers={"X-Request-Id": "trace-me-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "trace-me-42"
        assert body["request_id"] == "trace-me-42"
        _, _, headers = post(serve_ctx.base, "/v1/check", target_body)
        assert headers["X-Request-Id"]

    def test_bad_json_is_400(self, serve_ctx):
        request = urllib.request.Request(
            serve_ctx.base + "/v1/check", data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_missing_image_is_400(self, serve_ctx):
        status, body, _ = post(serve_ctx.base, "/v1/check", {"oops": 1})
        assert status == 400
        assert "image" in body["error"]

    def test_invalid_image_is_400(self, serve_ctx):
        status, body, _ = post(serve_ctx.base, "/v1/check",
                               {"image": {"version": 999}})
        assert status == 400
        assert "invalid" in body["error"]

    def test_unknown_route_is_404(self, serve_ctx):
        status, _, _ = post(serve_ctx.base, "/v1/nope", {})
        assert status == 404
        status, _ = get(serve_ctx.base, "/nope")
        assert status == 404


class TestHealthAndMetrics:
    def test_healthz_and_readyz(self, serve_ctx):
        status, text = get(serve_ctx.base, "/healthz")
        assert status == 200
        assert json.loads(text)["status"] == "ok"
        status, text = get(serve_ctx.base, "/readyz")
        assert status == 200
        assert json.loads(text)["status"] == "ready"

    def test_statusz_surface(self, serve_ctx, target_body):
        post(serve_ctx.base, "/v1/check", target_body)
        status, text = get(serve_ctx.base, "/statusz")
        assert status == 200
        statusz = json.loads(text)
        assert statusz["uptime_s"] > 0
        snapshot = statusz["snapshot"]
        assert len(snapshot["ruleset_digest"]) == 64
        assert snapshot["rule_count"] > 0
        assert snapshot["training_size"] == 60
        assert statusz["admission"]["max_inflight"] == 4
        assert statusz["requests_total"] >= 1
        check_slo = statusz["slo"]["/v1/check"]
        assert check_slo["count"] >= 1
        assert 0 < check_slo["p50_ms"] <= check_slo["p99_ms"]

    def test_metrics_exposition(self, serve_ctx, target_body):
        post(serve_ctx.base, "/v1/check", target_body)
        status, text = get(serve_ctx.base, "/metrics")
        assert status == 200
        assert "# TYPE serve_request_latency histogram" in text
        assert ('serve_request_latency_bucket'
                '{route="/v1/check",status="200",le="+Inf"}') in text
        assert "# TYPE serve_shed_total counter" in text
        assert "serve_requests_total" in text
        # Pipeline metrics folded from request registries surface too.
        assert "# TYPE check_seconds histogram" in text

    def test_concurrent_requests_all_counted(self, serve_ctx, target_body):
        before = 0
        with serve_ctx.server.metrics_lock:
            before = serve_ctx.server.registry.total("serve.requests.total")
        statuses = []

        def fire():
            status, _, _ = post(serve_ctx.base, "/v1/check", target_body)
            statuses.append(status)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses == [200] * 8
        with serve_ctx.server.metrics_lock:
            after = serve_ctx.server.registry.total("serve.requests.total")
        assert after - before >= 8


class TestAdmissionOverHttp:
    def test_overload_sheds_429_and_healthz_stays_up(self, serve_ctx,
                                                     target_body):
        server = serve_ctx.server
        admission = server.admission
        # Deterministic overload: hold every slot, fill the queue's
        # capacity budget by making the next request wait out the
        # (0.2s) queue timeout.
        taken = [admission.try_acquire()
                 for _ in range(server.config.max_inflight)]
        assert all(taken)
        shed_before = server.shed_total()
        try:
            status, body, headers = post(serve_ctx.base, "/v1/check",
                                         target_body)
            assert status == 429
            assert "shed" in body["error"]
            assert headers["Retry-After"] == "1"
            # Liveness is never admission-controlled.
            assert get(serve_ctx.base, "/healthz")[0] == 200
        finally:
            for _ in taken:
                admission.release()
        assert server.shed_total() == shed_before + 1
        status, text = get(serve_ctx.base, "/metrics")
        assert "serve_shed_total" in text
        # And the daemon recovers: the next request is served normally.
        status, _, _ = post(serve_ctx.base, "/v1/check", target_body)
        assert status == 200


class TestLedgerIntegration:
    def test_requests_append_ledger_entries(self, serve_ctx, target_body):
        status, body, _ = post(serve_ctx.base, "/v1/check", target_body)
        assert status == 200
        entries = serve_ctx.ledger.entries()
        commands = [entry.command for entry in entries]
        assert commands[0] == "serve.start"
        mine = [entry for entry in entries
                if entry.request.get("request_id") == body["request_id"]]
        assert len(mine) == 1
        entry = mine[0]
        assert entry.command == "serve.check"
        assert entry.request["route"] == "/v1/check"
        assert entry.request["status"] == 200
        assert entry.targets_checked == 1
        assert entry.ruleset_digest == \
            serve_ctx.server.pool.info["ruleset_digest"]
        assert entry.timing["request_seconds"] > 0


class TestReload:
    @pytest.fixture()
    def reload_ctx(self, tmp_path, trained_encore, small_corpus):
        snapshot = tmp_path / "model.json"
        trained_encore.save_model(snapshot)
        config = ServeConfig(
            snapshot=snapshot, port=0, max_inflight=2, max_queue=2,
            ledger_path=tmp_path / "ledger.jsonl",
        )
        server = boot(config)
        ctx = SimpleNamespace(
            server=server,
            base=f"http://127.0.0.1:{server.server_port}",
            snapshot=snapshot,
            ledger=Ledger(tmp_path / "ledger.jsonl"),
        )
        yield ctx
        server.stop()
        server.server_close()

    def test_reload_swaps_digest_and_records_ledger(self, reload_ctx,
                                                    small_corpus,
                                                    held_out_image):
        digest_before = json.loads(
            get(reload_ctx.base, "/statusz")[1]
        )["snapshot"]["ruleset_digest"]
        # A genuinely different model: half the corpus, fresh instance.
        other = EnCore()
        other.train(list(small_corpus[:30]))
        other.save_model(reload_ctx.snapshot)
        assert reload_ctx.server.reload(trigger="test")
        statusz = json.loads(get(reload_ctx.base, "/statusz")[1])
        assert statusz["snapshot"]["ruleset_digest"] != digest_before
        assert statusz["snapshot"]["reloads"] == 1
        assert statusz["snapshot"]["generation"] == 2
        commands = [entry.command for entry in reload_ctx.ledger.entries()]
        assert "serve.reload" in commands
        # The daemon keeps serving after the swap.
        status, _, _ = post(reload_ctx.base, "/v1/check",
                            {"image": image_to_dict(held_out_image)})
        assert status == 200

    def test_failed_reload_keeps_old_model(self, reload_ctx, held_out_image):
        digest_before = json.loads(
            get(reload_ctx.base, "/statusz")[1]
        )["snapshot"]["ruleset_digest"]
        reload_ctx.snapshot.write_text("{corrupt")
        assert not reload_ctx.server.reload(trigger="test")
        statusz = json.loads(get(reload_ctx.base, "/statusz")[1])
        assert statusz["snapshot"]["ruleset_digest"] == digest_before
        assert statusz["snapshot"]["reload_failures"] == 1
        assert get(reload_ctx.base, "/readyz")[0] == 200
        status, _, _ = post(reload_ctx.base, "/v1/check",
                            {"image": image_to_dict(held_out_image)})
        assert status == 200
        status, text = get(reload_ctx.base, "/metrics")
        assert 'serve_reload_total{outcome="failed"} 1' in text

    def test_watcher_mtime_poll_triggers_reload(self, tmp_path,
                                                trained_encore):
        snapshot = tmp_path / "model.json"
        trained_encore.save_model(snapshot)
        config = ServeConfig(
            snapshot=snapshot, port=0, max_inflight=2, max_queue=2,
            reload_poll_s=0.05, no_ledger=True,
        )
        server = boot(config)
        server.start_watcher()
        try:
            # Touch the snapshot with a guaranteed-new mtime.
            stat = snapshot.stat()
            import os

            os.utime(snapshot, (stat.st_atime, stat.st_mtime + 10))
            deadline = time.monotonic() + 5.0
            while server.reloads == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.reloads == 1
        finally:
            server.stop()
            server.server_close()


class TestServeCli:
    def test_serve_parser_wires_config(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--snapshot", "m.json", "--port", "0",
             "--max-inflight", "2", "--reload"]
        )
        assert args.func.__name__ == "cmd_serve"
        assert args.snapshot == "m.json"
        assert args.max_inflight == 2
        assert args.reload == 2.0  # bare --reload uses the default interval

    def test_missing_snapshot_exits_cleanly(self, tmp_path):
        from repro.cli import main

        rc = main(["serve", "--snapshot", str(tmp_path / "absent.json"),
                   "--port", "0", "--no-ledger"])
        assert rc == 1


# -- distributed tracing over HTTP (tracez / flightz / ledger) ------------------


class TestServeTracing:
    @pytest.fixture()
    def traced_ctx(self, tmp_path, serve_ctx):
        """A fresh daemon per test: empty exemplars, flight rings, ledger."""
        config = ServeConfig(
            snapshot=serve_ctx.snapshot,
            port=0,
            max_inflight=2,
            max_queue=2,
            queue_timeout_s=0.2,
            ledger_path=tmp_path / "ledger.jsonl",
        )
        server = boot(config)
        ctx = SimpleNamespace(
            server=server,
            base=f"http://127.0.0.1:{server.server_port}",
            ledger=Ledger(tmp_path / "ledger.jsonl"),
        )
        yield ctx
        server.stop()
        server.server_close()

    def test_request_trace_lands_in_tracez(self, traced_ctx, target_body):
        status, _, _ = post(traced_ctx.base, "/v1/check", target_body,
                            headers={"X-Request-Id": "trace-me-123"})
        assert status == 200
        status, text = get(traced_ctx.base, "/tracez")
        assert status == 200
        data = json.loads(text)
        assert data["seen"] == 1
        assert data["errored"] == []
        exemplar = data["slowest"][0]
        assert exemplar["request_id"] == "trace-me-123"
        assert exemplar["route"] == "/v1/check"
        assert exemplar["status"] == 200
        assert exemplar["seconds"] > 0
        # The caller's request id IS the trace root: one causally linked
        # tree covering admission wait and the model work.
        trace = exemplar["trace"]
        assert trace["trace_id"] == "trace-me-123"
        root = trace["spans"][0]
        assert root["name"] == "serve.request"
        assert root["attributes"]["route"] == "/v1/check"
        assert root["attributes"]["status"] == 200
        children = [child["name"] for child in root["children"]]
        assert children[0] == "serve.admission.wait"
        wait = root["children"][0]
        assert wait["attributes"]["admitted"] is True
        assert wait["parent_id"] == root["span_id"]

    def test_errored_request_keeps_full_exemplar(self, traced_ctx,
                                                 target_body, monkeypatch):
        monkeypatch.setattr(traced_ctx.server.pool, "lease",
                            _raise_runtime_error)
        status, body, _ = post(traced_ctx.base, "/v1/check", target_body,
                               headers={"X-Request-Id": "boom-1"})
        assert status == 500
        status, text = get(traced_ctx.base, "/tracez")
        data = json.loads(text)
        assert [item["request_id"] for item in data["errored"]] == ["boom-1"]
        assert data["errored"][0]["trace"]["trace_id"] == "boom-1"

    def test_flightz_records_spans_and_logs(self, traced_ctx, target_body):
        status, _, _ = post(traced_ctx.base, "/v1/check", target_body,
                            headers={"X-Request-Id": "flight-probe"})
        assert status == 200
        status, text = get(traced_ctx.base, "/flightz")
        assert status == 200
        data = json.loads(text)
        assert data["totals"]["spans"] >= 2
        names = {entry["name"] for entry in data["spans"]}
        assert {"serve.request", "serve.admission.wait"} <= names
        request_span = next(entry for entry in data["spans"]
                            if entry["name"] == "serve.request")
        assert request_span["trace_id"] == "flight-probe"

    def test_ledger_entry_carries_trace_id(self, traced_ctx, target_body):
        status, body, _ = post(traced_ctx.base, "/v1/check", target_body,
                               headers={"X-Request-Id": "ledger-trace-7"})
        assert status == 200
        entries = [entry for entry in traced_ctx.ledger.entries()
                   if entry.command == "serve.check"]
        assert len(entries) == 1
        assert entries[0].request["request_id"] == "ledger-trace-7"
        assert entries[0].request["trace_id"] == "ledger-trace-7"


def _raise_runtime_error(*args, **kwargs):
    raise RuntimeError("injected failure")
