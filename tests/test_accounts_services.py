"""Unit tests for account databases, service registries, hardware, OS info."""

import pytest

from repro.sysmodel.accounts import AccountDatabase, Group, User
from repro.sysmodel.hardware import HardwareSpec
from repro.sysmodel.osinfo import OSInfo, SELinuxStatus
from repro.sysmodel.services import Service, ServiceRegistry


class TestUserGroup:
    def test_user_validation(self):
        with pytest.raises(ValueError):
            User("", 1, 1)
        with pytest.raises(ValueError):
            User("x", -1, 0)

    def test_group_validation(self):
        with pytest.raises(ValueError):
            Group("", 1)
        with pytest.raises(ValueError):
            Group("g", -2)


class TestAccountDatabase:
    def test_defaults_have_root_and_nobody(self):
        db = AccountDatabase.with_defaults()
        assert db.has_user("root")
        assert db.has_user("nobody")
        assert db.has_group("root")

    def test_ensure_service_account_idempotent(self):
        db = AccountDatabase.with_defaults()
        first = db.ensure_service_account("mysql", 27)
        second = db.ensure_service_account("mysql", 99)
        assert first == second
        assert db.user("mysql").uid == 27

    def test_primary_group(self):
        db = AccountDatabase.with_defaults()
        db.ensure_service_account("mysql", 27)
        assert db.primary_group("mysql") == "mysql"

    def test_primary_group_missing_user(self):
        assert AccountDatabase.with_defaults().primary_group("ghost") is None

    def test_groups_of_includes_supplementary(self):
        db = AccountDatabase.with_defaults()
        db.add_user(User("alice", 1000, 1000))
        db.add_group(Group("alice", 1000))
        db.add_group(Group("wheel", 10, members=("alice",)))
        assert db.groups_of("alice") == ["alice", "wheel"]

    def test_is_member(self):
        db = AccountDatabase.with_defaults()
        db.ensure_service_account("mysql", 27)
        assert db.is_member("mysql", "mysql")
        assert not db.is_member("mysql", "root")

    def test_is_admin_for_root(self):
        db = AccountDatabase.with_defaults()
        assert db.is_admin("root")
        assert not db.is_admin("nobody")
        assert not db.is_admin("ghost")

    def test_is_admin_for_wheel_member(self):
        db = AccountDatabase.with_defaults()
        db.add_user(User("ops", 1000, 1000))
        db.add_group(Group("ops", 1000))
        db.add_group(Group("wheel", 10, members=("ops",)))
        assert db.is_admin("ops")

    def test_is_in_root_group(self):
        db = AccountDatabase.with_defaults()
        db.add_user(User("r2", 1001, 0))
        assert db.is_in_root_group("r2")
        assert not db.is_in_root_group("nobody")

    def test_user_group_map_covers_all_users(self):
        db = AccountDatabase.with_defaults()
        assert set(db.user_group_map()) == set(db.user_list())

    def test_copy_is_independent(self):
        db = AccountDatabase.with_defaults()
        clone = db.copy()
        clone.remove_user("nobody")
        assert db.has_user("nobody")


class TestServiceRegistry:
    def test_defaults_include_mysql_http(self):
        registry = ServiceRegistry()
        assert registry.is_registered(3306)
        assert registry.is_registered(80)
        assert not registry.is_registered(12345)

    def test_port_range_validation(self):
        with pytest.raises(ValueError):
            Service("bad", 0)
        with pytest.raises(ValueError):
            Service("bad", 70000)

    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            Service("x", 53, "icmp")

    def test_lookup(self):
        registry = ServiceRegistry()
        assert registry.lookup(22) == "ssh"
        assert registry.lookup(4) is None

    def test_port_service_map_merges_protocols(self):
        registry = ServiceRegistry()
        assert registry.port_service_map()[53] == ["domain"]

    def test_is_privileged(self):
        registry = ServiceRegistry()
        assert registry.is_privileged(80)
        assert not registry.is_privileged(8080)

    def test_ports_sorted_distinct(self):
        ports = ServiceRegistry().ports()
        assert ports == sorted(set(ports))

    def test_add_and_copy(self):
        registry = ServiceRegistry()
        clone = registry.copy()
        clone.add(Service("custom", 9999))
        assert clone.is_registered(9999)
        assert not registry.is_registered(9999)


class TestHardwareSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec(cpu_threads=0)
        with pytest.raises(ValueError):
            HardwareSpec(memory_bytes=-1)

    def test_unavailable(self):
        spec = HardwareSpec.unavailable()
        assert not spec.available

    def test_unit_helpers(self):
        spec = HardwareSpec(memory_bytes=2 << 30, disk_bytes=50 << 30)
        assert spec.memory_mb == 2048
        assert spec.disk_gb == 50


class TestOSInfo:
    def test_family_detection(self):
        assert OSInfo(dist_name="centos").is_rpm_family
        assert OSInfo(dist_name="ubuntu").is_deb_family
        assert not OSInfo(dist_name="ubuntu").is_rpm_family

    def test_empty_dist_rejected(self):
        with pytest.raises(ValueError):
            OSInfo(dist_name="")

    def test_selinux_enum_values(self):
        assert SELinuxStatus("enforcing") is SELinuxStatus.ENFORCING
