"""repro doctor: redaction, bundle build/verify, tamper detection, CLI."""

import io
import json
import tarfile

import pytest

from repro.cli import main
from repro.obs.doctor import (
    DoctorError,
    build_bundle,
    check_bundle,
    collect_members,
    redact,
    redact_text,
    tail_lines,
)
from repro.obs.flight import FlightRecorder, set_flight


@pytest.fixture()
def state_dir(tmp_path):
    """A populated .encore directory with a secret planted in the ledger."""
    state = tmp_path / ".encore"
    state.mkdir()
    (state / "ledger.jsonl").write_text(
        json.dumps({"run_id": "run-1", "command": "check"}) + "\n"
        + json.dumps({"run_id": "run-2", "db_password": "hunter2"}) + "\n"
        + "not json at all\n"
    )
    (state / "quarantine.jsonl").write_text(
        json.dumps({"image_id": "img-7", "stage": "parse",
                    "trace_id": "t" * 16}) + "\n"
    )
    (state / "profile.json").write_text(json.dumps({"stages": {}}))
    (state / "alerts.toml").write_text('[[rule]]\nname = "latency"\n')
    (state / "flight.json").write_text(json.dumps(
        FlightRecorder(capacity=2).to_dict()
    ))
    return state


class TestRedaction:
    def test_secret_keys_masked_recursively(self):
        data = {
            "password": "x", "api_key": "y", "Authorization": "Bearer z",
            "nested": [{"refresh_token": "t", "fine": "keep"}],
            "count": 3,
        }
        out = redact(data, home="/home/op")
        assert out["password"] == "[redacted]"
        assert out["api_key"] == "[redacted]"
        assert out["Authorization"] == "[redacted]"
        assert out["nested"][0]["refresh_token"] == "[redacted]"
        assert out["nested"][0]["fine"] == "keep"
        assert out["count"] == 3

    def test_home_paths_masked_in_strings(self):
        assert redact_text("/home/op/corpus/a.json",
                           home="/home/op") == "~/corpus/a.json"
        assert redact({"path": "/home/op/x"}, home="/home/op") == {
            "path": "~/x"
        }
        # A root home must never blank every absolute path.
        assert redact_text("/etc/my.cnf", home="/") == "/etc/my.cnf"

    def test_tail_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("a\n\nb\nc\n")
        assert tail_lines(path, limit=2) == ["b", "c"]
        assert tail_lines(tmp_path / "missing.jsonl") == []


class TestBundle:
    def test_members_and_verify(self, state_dir, tmp_path, monkeypatch):
        snapshot = tmp_path / "model.json"
        snapshot.write_text("{}")
        out, manifest = build_bundle(
            tmp_path / "bundle.tar.gz", state_dir=state_dir,
            snapshot=snapshot,
        )
        names = set(manifest["members"])
        assert {"platform.json", "flight.json", "ledger_tail.jsonl",
                "quarantine_tail.jsonl", "profile.json", "alerts.toml",
                "digests.json"} <= names
        report = check_bundle(out)
        assert report["verified"] == len(names)
        with tarfile.open(out) as archive:
            ledger = archive.extractfile("ledger_tail.jsonl").read().decode()
            assert "hunter2" not in ledger
            assert "[redacted]" in ledger
            assert "not json at all" in ledger  # unparseable lines kept
            digests = json.loads(
                archive.extractfile("digests.json").read().decode()
            )
        digested = {entry["path"] for entry in digests["files"]}
        assert any(path.endswith("model.json") for path in digested)
        assert any(path.endswith("alerts.toml") for path in digested)

    def test_live_flight_recorder_wins(self, state_dir):
        recorder = FlightRecorder(capacity=4)
        recorder.record_incident("fired", {"rule": "live-one"})
        set_flight(recorder)
        try:
            members = collect_members(state_dir=state_dir)
        finally:
            set_flight(None)
        flight = json.loads(members["flight.json"])
        assert flight["incidents"][0]["incident"]["rule"] == "live-one"

    def test_daemon_fetch_best_effort(self, state_dir):
        def fetch(route):
            if route == "alertz":
                raise OSError("connection refused")
            return {"route": route}

        members = collect_members(state_dir=state_dir, fetch=fetch)
        assert "statusz.json" in members
        assert "tracez.json" in members
        assert "flightz.json" in members
        assert "alertz.json" not in members  # failed fetch skipped

    def test_tampered_member_rejected(self, state_dir, tmp_path):
        out, _ = build_bundle(tmp_path / "b.tar.gz", state_dir=state_dir)
        rebuilt = tmp_path / "tampered.tar.gz"
        with tarfile.open(out) as src, tarfile.open(rebuilt, "w:gz") as dst:
            for member in src.getmembers():
                blob = src.extractfile(member).read()
                if member.name == "platform.json":
                    blob = blob.replace(b"{", b"{ ", 1)
                info = tarfile.TarInfo(member.name)
                info.size = len(blob)
                dst.addfile(info, io.BytesIO(blob))
        with pytest.raises(DoctorError, match="platform.json"):
            check_bundle(rebuilt)

    def test_unlisted_member_rejected(self, state_dir, tmp_path):
        out, _ = build_bundle(tmp_path / "b.tar.gz", state_dir=state_dir)
        smuggled = tmp_path / "smuggled.tar.gz"
        with tarfile.open(out) as src, tarfile.open(smuggled, "w:gz") as dst:
            for member in src.getmembers():
                blob = src.extractfile(member).read()
                info = tarfile.TarInfo(member.name)
                info.size = len(blob)
                dst.addfile(info, io.BytesIO(blob))
            extra = b"surprise"
            info = tarfile.TarInfo("extra.bin")
            info.size = len(extra)
            dst.addfile(info, io.BytesIO(extra))
        with pytest.raises(DoctorError, match="extra.bin"):
            check_bundle(smuggled)

    def test_missing_manifest_rejected(self, tmp_path):
        empty = tmp_path / "no-manifest.tar.gz"
        with tarfile.open(empty, "w:gz") as archive:
            blob = b"{}"
            info = tarfile.TarInfo("platform.json")
            info.size = len(blob)
            archive.addfile(info, io.BytesIO(blob))
        with pytest.raises(DoctorError, match="manifest"):
            check_bundle(empty)

    def test_not_an_archive_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.tar.gz"
        bogus.write_text("definitely not a tarball")
        with pytest.raises(DoctorError, match="cannot open"):
            check_bundle(bogus)


class TestDoctorCli:
    def test_bundle_then_check(self, state_dir, tmp_path, monkeypatch,
                               capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "doctor-bundle.tar.gz" in out
        assert "repro doctor check" in out
        assert main(["doctor", "check"]) == 0
        assert "ok —" in capsys.readouterr().out

    def test_check_rejects_corrupt_bundle(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["doctor"]) == 0
        capsys.readouterr()
        bundle = tmp_path / ".encore" / "doctor-bundle.tar.gz"
        raw = bytearray(bundle.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        bundle.write_bytes(bytes(raw))
        assert main(["doctor", "check"]) == 1
        assert "bundle check failed" in capsys.readouterr().err
