"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sysmodel.snapshot import load_image


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-corpus")
    rc = main(["generate", "--out", str(out), "--count", "25", "--seed", "7"])
    assert rc == 0
    return out


def _snapshot_datadir(data):
    """The datadir value recorded in a snapshot's my.cnf."""
    for config in data["config_files"]:
        if config["app"] != "mysql":
            continue
        for line in config["text"].splitlines():
            if line.strip().startswith("datadir"):
                return line.split("=", 1)[1].strip()
    raise AssertionError("snapshot has no mysql datadir")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_snapshots(self, corpus_dir):
        snapshots = list(corpus_dir.glob("*.json"))
        assert len(snapshots) == 25
        image = load_image(snapshots[0])
        assert image.has_app("mysql")

    def test_private_cloud_population(self, tmp_path):
        rc = main([
            "generate", "--out", str(tmp_path), "--count", "3",
            "--seed", "1", "--population", "private-cloud",
        ])
        assert rc == 0
        image = load_image(next(tmp_path.glob("*.json")))
        assert image.running


class TestTrainCheck:
    def test_train_saves_rules(self, corpus_dir, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rc = main([
            "train", "--training", str(corpus_dir), "--rules", str(rules_path),
        ])
        assert rc == 0
        assert rules_path.exists()
        rules = json.loads(rules_path.read_text())
        assert isinstance(rules, list) and rules
        out = capsys.readouterr().out
        assert "trained on 25 systems" in out

    def test_train_workers_matches_serial(self, corpus_dir, tmp_path, capsys):
        """`--workers 2` must write byte-identical rules to a serial run."""
        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main([
            "train", "--training", str(corpus_dir), "--rules", str(serial),
        ]) == 0
        assert main([
            "train", "--training", str(corpus_dir), "--rules", str(sharded),
            "--workers", "2",
        ]) == 0
        capsys.readouterr()
        assert serial.read_text() == sharded.read_text()

    def test_audit_with_workers(self, corpus_dir, capsys):
        rc = main([
            "audit", "--training", str(corpus_dir),
            "--targets", str(corpus_dir), "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "audit complete" in out

    def test_check_with_saved_rules(self, corpus_dir, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        main(["train", "--training", str(corpus_dir), "--rules", str(rules_path)])
        target = sorted(corpus_dir.glob("*.json"))[0]
        main([
            "check", "--training", str(corpus_dir),
            "--target", str(target), "--rules", str(rules_path),
        ])
        out = capsys.readouterr().out
        assert "EnCore report" in out

    def test_check_flags_broken_target(self, corpus_dir, tmp_path, capsys):
        # Break a snapshot: datadir owned by root.
        source = sorted(corpus_dir.glob("*.json"))[1]
        data = json.loads(source.read_text())
        datadir = _snapshot_datadir(data)
        for entry in data["files"]:
            if entry["path"] == datadir:
                entry["owner"] = "root"
                entry["group"] = "root"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        rc = main([
            "check", "--training", str(corpus_dir), "--target", str(broken),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "datadir" in out

    def test_missing_training_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "train", "--training", str(tmp_path / "empty"),
            ])


class TestSuggestAudit:
    def test_suggest_on_broken_target(self, corpus_dir, tmp_path, capsys):
        source = sorted(corpus_dir.glob("*.json"))[2]
        data = json.loads(source.read_text())
        datadir = _snapshot_datadir(data)
        for entry in data["files"]:
            if entry["path"] == datadir:
                entry["owner"] = "root"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        rc = main([
            "suggest", "--training", str(corpus_dir), "--target", str(broken),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "remediation suggestions" in out
        assert "chown" in out

    def test_audit_sweep(self, corpus_dir, capsys):
        rc = main([
            "audit", "--training", str(corpus_dir), "--targets", str(corpus_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit complete" in out
