"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sysmodel.snapshot import load_image


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-corpus")
    rc = main(["generate", "--out", str(out), "--count", "25", "--seed", "7"])
    assert rc == 0
    return out


def _snapshot_datadir(data):
    """The datadir value recorded in a snapshot's my.cnf."""
    for config in data["config_files"]:
        if config["app"] != "mysql":
            continue
        for line in config["text"].splitlines():
            if line.strip().startswith("datadir"):
                return line.split("=", 1)[1].strip()
    raise AssertionError("snapshot has no mysql datadir")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_snapshots(self, corpus_dir):
        snapshots = list(corpus_dir.glob("*.json"))
        assert len(snapshots) == 25
        image = load_image(snapshots[0])
        assert image.has_app("mysql")

    def test_private_cloud_population(self, tmp_path):
        rc = main([
            "generate", "--out", str(tmp_path), "--count", "3",
            "--seed", "1", "--population", "private-cloud",
        ])
        assert rc == 0
        image = load_image(next(tmp_path.glob("*.json")))
        assert image.running


class TestTrainCheck:
    def test_train_saves_rules(self, corpus_dir, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rc = main([
            "train", "--training", str(corpus_dir), "--rules", str(rules_path),
        ])
        assert rc == 0
        assert rules_path.exists()
        rules = json.loads(rules_path.read_text())
        assert isinstance(rules, list) and rules
        out = capsys.readouterr().out
        assert "trained on 25 systems" in out

    def test_train_workers_matches_serial(self, corpus_dir, tmp_path, capsys):
        """`--workers 2` must write byte-identical rules to a serial run."""
        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main([
            "train", "--training", str(corpus_dir), "--rules", str(serial),
        ]) == 0
        assert main([
            "train", "--training", str(corpus_dir), "--rules", str(sharded),
            "--workers", "2",
        ]) == 0
        capsys.readouterr()
        assert serial.read_text() == sharded.read_text()

    def test_audit_with_workers(self, corpus_dir, capsys):
        rc = main([
            "audit", "--training", str(corpus_dir),
            "--targets", str(corpus_dir), "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "audit complete" in out

    def test_check_with_saved_rules(self, corpus_dir, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        main(["train", "--training", str(corpus_dir), "--rules", str(rules_path)])
        target = sorted(corpus_dir.glob("*.json"))[0]
        main([
            "check", "--training", str(corpus_dir),
            "--target", str(target), "--rules", str(rules_path),
        ])
        out = capsys.readouterr().out
        assert "EnCore report" in out

    def test_check_flags_broken_target(self, corpus_dir, tmp_path, capsys):
        # Break a snapshot: datadir owned by root.
        source = sorted(corpus_dir.glob("*.json"))[1]
        data = json.loads(source.read_text())
        datadir = _snapshot_datadir(data)
        for entry in data["files"]:
            if entry["path"] == datadir:
                entry["owner"] = "root"
                entry["group"] = "root"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        rc = main([
            "check", "--training", str(corpus_dir), "--target", str(broken),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "datadir" in out

    def test_missing_training_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "train", "--training", str(tmp_path / "empty"),
            ])


class TestSuggestAudit:
    def test_suggest_on_broken_target(self, corpus_dir, tmp_path, capsys):
        source = sorted(corpus_dir.glob("*.json"))[2]
        data = json.loads(source.read_text())
        datadir = _snapshot_datadir(data)
        for entry in data["files"]:
            if entry["path"] == datadir:
                entry["owner"] = "root"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        rc = main([
            "suggest", "--training", str(corpus_dir), "--target", str(broken),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "remediation suggestions" in out
        assert "chown" in out

    def test_audit_sweep(self, corpus_dir, capsys):
        rc = main([
            "audit", "--training", str(corpus_dir), "--targets", str(corpus_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit complete" in out


class TestWatchReconnect:
    """`repro watch` must survive daemon restarts with backoff, not die."""

    @staticmethod
    def _args(**overrides):
        import argparse

        fields = dict(url="127.0.0.1:1", interval=0.01, once=False,
                      max_retries=None)
        fields.update(overrides)
        return argparse.Namespace(**fields)

    def test_reconnects_after_transient_failure(self, monkeypatch, capsys):
        import repro.cli as cli

        frames = iter([OSError("connection refused"), "FRAME-OK"])

        def fake_frame(base):
            item = next(frames)
            if isinstance(item, Exception):
                raise item
            return item

        sleeps = []

        def fake_sleep(delay):
            sleeps.append(delay)
            if len(sleeps) > 1:  # the post-frame interval sleep: stop here
                raise KeyboardInterrupt

        import types

        monkeypatch.setattr(cli, "_watch_frame", fake_frame)
        monkeypatch.setattr(cli, "time", types.SimpleNamespace(sleep=fake_sleep))
        rc = cli.cmd_watch(self._args())
        captured = capsys.readouterr()
        assert rc == 0
        assert "reconnecting to http://127.0.0.1:1 (attempt 1" in captured.err
        assert "Traceback" not in captured.err
        assert "FRAME-OK" in captured.out

    def test_max_retries_bounds_patience_with_backoff(self, monkeypatch,
                                                      capsys):
        import types

        import repro.cli as cli

        def always_down(base):
            raise OSError("connection refused")

        sleeps = []
        monkeypatch.setattr(cli, "_watch_frame", always_down)
        monkeypatch.setattr(cli, "time",
                            types.SimpleNamespace(sleep=sleeps.append))
        rc = cli.cmd_watch(self._args(max_retries=2))
        captured = capsys.readouterr()
        assert rc == 1
        assert "after 3 attempt(s)" in captured.err
        # Exponential backoff from the 0.1s floor, doubling per failure.
        assert sleeps == [0.1, 0.2]

    def test_once_keeps_hard_failure_contract(self, monkeypatch, capsys):
        import repro.cli as cli

        def always_down(base):
            raise OSError("connection refused")

        monkeypatch.setattr(cli, "_watch_frame", always_down)
        rc = cli.cmd_watch(self._args(once=True))
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot reach" in captured.err
        assert "reconnecting" not in captured.err
