"""Tests for rule templates (Table 6) and concrete rules."""

import pytest

from repro.core.assembler import DataAssembler
from repro.core.rules import ConcreteRule, RuleSet
from repro.core.templates import (
    RelationKind,
    default_templates,
    template_by_name,
)
from repro.core.types import ConfigType, TypedValue


@pytest.fixture()
def system(mysql_image):
    return DataAssembler().assemble(mysql_image)


def tv(value, config_type=ConfigType.STRING):
    return TypedValue(value, config_type)


class TestDefaultTemplates:
    def test_eleven_predefined(self):
        """Table 6 lists 11 predefined templates."""
        assert len(default_templates()) == 11

    def test_lookup_by_name(self):
        assert template_by_name("ownership").relation is RelationKind.OWNS
        with pytest.raises(KeyError):
            template_by_name("nope")

    def test_spec_rendering(self):
        spec = template_by_name("ownership").spec()
        assert "FilePath" in spec and "UserName" in spec


class TestEquality:
    def test_equal(self, system):
        template = template_by_name("equal_same_type")
        assert template.validate(tv("a"), tv("a"), system) is True
        assert template.validate(tv("a"), tv("b"), system) is False


class TestImplies:
    def test_antecedent_off_not_applicable(self, system):
        template = template_by_name("extended_boolean")
        assert template.validate(tv("off"), tv("on"), system) is None

    def test_antecedent_on(self, system):
        template = template_by_name("extended_boolean")
        assert template.validate(tv("on"), tv("True"), system) is True
        assert template.validate(tv("On"), tv("off"), system) is False


class TestSubnet:
    def test_prefix_match(self, system):
        template = template_by_name("ip_subnet")
        assert template.validate(tv("10.0.1.5"), tv("10.0.0.0"), system) is True
        assert template.validate(tv("192.168.1.1"), tv("10.0.0.0"), system) is False

    def test_full_address_not_applicable(self, system):
        template = template_by_name("ip_subnet")
        assert template.validate(tv("10.0.1.5"), tv("10.0.1.6"), system) is None

    def test_ipv6_not_applicable(self, system):
        template = template_by_name("ip_subnet")
        assert template.validate(tv("::1"), tv("10.0.0.0"), system) is None


class TestConcat:
    def test_existing_join(self, system):
        system.image.fs.add_file("/etc/httpd/modules/mod_x.so")
        template = template_by_name("concat_path")
        assert template.validate(
            tv("/etc/httpd"), tv("modules/mod_x.so"), system
        ) is True
        assert template.validate(
            tv("/etc/httpd"), tv("modules/none.so"), system
        ) is False


class TestSubstring:
    def test_prefix(self, system):
        template = template_by_name("substring")
        assert template.validate(tv("/var/lib"), tv("/var/lib/mysql"), system) is True
        assert template.validate(tv("/opt"), tv("/var/lib/mysql"), system) is False

    def test_identity_not_applicable(self, system):
        template = template_by_name("substring")
        assert template.validate(tv("/x"), tv("/x"), system) is None


class TestAccountTemplates:
    def test_user_in_group(self, system):
        template = template_by_name("user_in_group")
        assert template.validate(tv("mysql"), tv("mysql"), system) is True
        assert template.validate(tv("mysql"), tv("root"), system) is False
        assert template.validate(tv("ghost"), tv("mysql"), system) is False

    def test_ownership(self, system):
        template = template_by_name("ownership")
        assert template.validate(tv("/var/lib/mysql"), tv("mysql"), system) is True
        assert template.validate(tv("/var/lib/mysql"), tv("root"), system) is False

    def test_ownership_missing_path_not_applicable(self, system):
        template = template_by_name("ownership")
        assert template.validate(tv("/nowhere"), tv("mysql"), system) is None

    def test_not_accessible(self, system):
        template = template_by_name("not_accessible")
        # mode 0640 owner mysql: nobody cannot read, mysql can.
        assert template.validate(tv("/var/log/mysqld.log"), tv("nobody"), system) is True
        assert template.validate(tv("/var/log/mysqld.log"), tv("mysql"), system) is False


class TestOrderings:
    def test_less_number(self, system):
        template = template_by_name("less_number")
        assert template.validate(tv("5"), tv("20"), system) is True
        assert template.validate(tv("20"), tv("5"), system) is False
        assert template.validate(tv("x"), tv("5"), system) is None

    def test_less_size(self, system):
        template = template_by_name("less_size")
        assert template.validate(tv("8K"), tv("1M"), system) is True
        assert template.validate(tv("2G"), tv("64M"), system) is False
        assert template.validate(tv("64M"), tv("64M"), system) is True  # <= semantics
        assert template.validate(tv("weird"), tv("64M"), system) is None


class TestConcreteRule:
    def make_rule(self, **kw):
        defaults = dict(
            template_name="ownership",
            attribute_a="mysql:mysqld/datadir",
            attribute_b="mysql:mysqld/user",
            relation="=>",
            support=30,
            valid_count=30,
        )
        defaults.update(kw)
        return ConcreteRule(**defaults)

    def test_confidence(self):
        assert self.make_rule(valid_count=27).confidence == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_rule(valid_count=31)
        with pytest.raises(ValueError):
            self.make_rule(support=-1)

    def test_evaluate_against_system(self, system):
        rule = self.make_rule()
        template = template_by_name("ownership")
        assert rule.evaluate(system, template) is True
        system.image.fs.chown("/var/lib/mysql", owner="root")
        assert rule.evaluate(system, template) is False

    def test_evaluate_absent_entries_ignored(self, system):
        rule = self.make_rule(attribute_a="mysql:missing")
        template = template_by_name("ownership")
        assert rule.evaluate(system, template) is None

    def test_serialisation_roundtrip(self):
        rule = self.make_rule(entropy_a=0.5, description="d")
        restored = ConcreteRule.from_dict(rule.to_dict())
        assert restored == rule

    def test_str(self):
        assert "=>" in str(self.make_rule())


class TestRuleSet:
    def test_dedupe_on_key(self):
        rules = RuleSet()
        rule = ConcreteRule("t", "a", "b", "==", 10, 10)
        assert rules.add(rule)
        assert not rules.add(ConcreteRule("t", "a", "b", "==", 5, 5))
        assert len(rules) == 1

    def test_queries(self):
        rules = RuleSet(
            [
                ConcreteRule("t1", "a", "b", "==", 10, 10),
                ConcreteRule("t2", "a", "c", "<", 10, 9),
            ]
        )
        assert len(rules.by_template("t1")) == 1
        assert len(rules.involving("a")) == 2
        assert len(rules.involving("c")) == 1

    def test_sorted_by_confidence(self):
        rules = RuleSet(
            [
                ConcreteRule("t", "a", "b", "==", 10, 9),
                ConcreteRule("t", "c", "d", "==", 10, 10),
            ]
        )
        ordered = rules.sorted_by_confidence()
        assert ordered[0].confidence == 1.0

    def test_save_load(self, tmp_path):
        rules = RuleSet([ConcreteRule("t", "a", "b", "==", 10, 10)])
        path = rules.save(tmp_path / "rules.json")
        restored = RuleSet.load(path)
        assert len(restored) == 1
        assert list(restored)[0].key == ("t", "a", "b")
