"""Tests for the Figure 6 customization file."""

import pytest

from repro.core.augment import Augmenter
from repro.core.customization import (
    Customization,
    CustomizationError,
    environment_namespace,
    parse_customization,
)
from repro.core.types import ConfigType, TypeInferencer, TypeRegistry
from repro.sysmodel.image import SystemImage

SAMPLE = """
$$TypeDeclaration
WebRootPath
$$TypeInference
WebRootPath (value): { return value.startswith('/srv/') }
$$TypeValidation
WebRootPath (value): { return value in FS.FileList }
$$TypeAugmentDeclaration
WebRootPath.Depth <Number>
$$TypeAugment
WebRootPath.Depth (value): { return len(value.split('/')) - 1 }
$$TypeOperator
WebRootPath : Operator '<'
lessdepth (v1, v2): { return len(v1) < len(v2) }
$$Template
[A] < [B] <WebRootPath, WebRootPath> -- 90%
"""


@pytest.fixture()
def image():
    img = SystemImage("cust-img")
    img.fs.add_dir("/srv/www")
    return img


class TestParsing:
    def test_sections_parsed(self):
        custom = parse_customization(SAMPLE)
        assert custom.type_names == ["WebRootPath"]
        assert "WebRootPath" in custom.inference_methods
        assert "WebRootPath" in custom.validation_methods
        assert custom.augment_declarations == [("WebRootPath", "Depth", "Number")]
        assert ("WebRootPath", "<") in custom.operators
        assert len(custom.template_specs) == 1
        assert custom.template_specs[0].min_confidence == 0.9

    def test_empty_file(self):
        custom = parse_customization("")
        assert custom.type_names == []
        assert custom.template_specs == []

    def test_unknown_section_raises(self):
        with pytest.raises(CustomizationError):
            parse_customization("$$Bogus\nx\n")

    def test_malformed_method_raises(self):
        with pytest.raises(CustomizationError):
            parse_customization("$$TypeInference\nnot a method\n")

    def test_malformed_template_raises(self):
        with pytest.raises(CustomizationError):
            parse_customization("$$Template\n[A] ?? nonsense\n")

    def test_forbidden_constructs_rejected(self):
        for expr in ("__import__('os')", "open('/etc/passwd')", "eval('1')"):
            with pytest.raises(CustomizationError):
                parse_customization(
                    f"$$TypeInference\nX (value): {{ return {expr} }}\n"
                )

    def test_figure6_sample_parses(self):
        """The literal shape shown in Figure 6 of the paper."""
        text = (
            "$$TypeDeclaration\n"
            "MyType\n"
            "$$TypeInference\n"
            "MyType (value): { return True }\n"
            "$$TypeValidation\n"
            "MyType (value): { return True }\n"
            "$$TypeOperator\n"
            "MyType : Operator '<'\n"
            "lt (v1,v2): { return True }\n"
            "$$Template\n"
            "[A] < [B] <MyType, MyType> -- 90%\n"
        )
        custom = parse_customization(text)
        assert custom.type_names == ["MyType"]


class TestMethodExecution:
    def test_method_arguments(self):
        custom = parse_customization(
            "$$TypeInference\nT (value): { return value.upper() }\n"
        )
        assert custom.inference_methods["T"]("abc") == "ABC"

    def test_wrong_arity_raises(self):
        custom = parse_customization(
            "$$TypeInference\nT (value): { return value }\n"
        )
        with pytest.raises(TypeError):
            custom.inference_methods["T"]("a", "b")

    def test_environment_access(self, image):
        custom = parse_customization(
            "$$TypeValidation\nT (value): { return value in FS.FileList }\n"
        )
        method = custom.validation_methods["T"]
        env = environment_namespace(image)
        assert method("/srv/www", _env=env)
        assert not method("/nope", _env=env)


class TestEnvironmentNamespace:
    def test_table7_structures_present(self, image):
        env = environment_namespace(image)
        assert set(env) == {"FS", "Acct", "Service", "Env", "Sec", "HW"}
        assert "/srv/www" in env["FS"].FileList
        assert "root" in env["Acct"].UserList
        assert 22 in env["Service"].Ports
        assert env["Sec"].SELinux == "absent"

    def test_dormant_image_env_vars_empty(self, image):
        env = environment_namespace(image)
        assert env["Env"].VarValueMap == {}

    def test_unavailable_hardware_is_none(self, image):
        env = environment_namespace(image)
        assert env["HW"].Cores is None

    def test_none_image(self):
        assert environment_namespace(None) == {}


class TestApplication:
    def test_apply_to_type_registry(self, image):
        custom = parse_customization(SAMPLE)
        registry = TypeRegistry()
        custom.apply_to_type_registry(registry)
        inferencer = TypeInferencer(registry)
        # /srv/www matches the custom syntactic check AND exists.
        assert inferencer.infer("/srv/www", image) is not ConfigType.FILE_PATH

    def test_missing_inference_method_raises(self):
        custom = Customization(type_names=["X"])
        with pytest.raises(CustomizationError):
            custom.apply_to_type_registry(TypeRegistry())

    def test_apply_to_augmenter(self, image):
        custom = parse_customization(SAMPLE)
        augmenter = Augmenter()
        custom.apply_to_augmenter(augmenter)
        # The custom type name is not a predefined ConfigType, so its
        # carrier is String; augment a String value to trigger it.
        attrs = augmenter.augment("/srv/www", ConfigType.STRING, image)
        assert any(a.suffix == "Depth" and a.value == "2" for a in attrs)

    def test_missing_augment_method_raises(self):
        custom = Customization(
            augment_declarations=[("X", "Y", "Number")]
        )
        with pytest.raises(CustomizationError):
            custom.apply_to_augmenter(Augmenter())

    def test_build_templates(self, image):
        custom = parse_customization(SAMPLE)
        templates = custom.build_templates()
        assert len(templates) == 1
        template = templates[0]
        from repro.core.dataset import AssembledSystem
        from repro.core.types import TypedValue

        system = AssembledSystem(image)
        assert template.validate(
            TypedValue("/a", ConfigType.STRING), TypedValue("/ab", ConfigType.STRING),
            system,
        ) is True

    def test_template_without_operator_raises(self):
        custom = parse_customization("$$Template\n[A] < [B] <X, X>\n")
        with pytest.raises(CustomizationError):
            custom.build_templates()
