"""Fault-injection harness tests and the seeded fuzz-lite parser suite.

The parser contract under adversarial input is total: for any corrupted
text, ``ConfigParser.parse`` either returns entries or raises
``ConfigParseError`` — never an unhandled exception, never a hang.  The
fuzz-lite suite sweeps every app's parser across every seeded corruption
mode; the remaining classes pin the determinism and bookkeeping of the
injectors themselves.
"""

import os

import pytest

from repro.core.resilience import FaultInjected
from repro.parsers.base import ConfigParseError, ConfigParser
from repro.parsers.registry import default_registry
from repro.sysmodel.image import ConfigFile, SystemImage
from repro.testing.faults import (
    CORRUPTIONS,
    FaultPlan,
    corrupt_text,
    poison_corpus,
    poison_image,
    poisonable_app,
    valid_config_samples,
)

APPS = sorted(valid_config_samples())


class TestFuzzLiteParsers:
    """Seeded corruption sweep: parsers never leak unhandled exceptions."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
    @pytest.mark.parametrize("seed", range(8))
    def test_corrupted_text_is_contained(self, app, mode, seed):
        registry = default_registry()
        text = CORRUPTIONS[mode](valid_config_samples()[app], seed)
        try:
            entries = registry.parse(app, text)
        except ConfigParseError:
            return
        assert isinstance(entries, list)

    @pytest.mark.parametrize("app", APPS)
    def test_valid_samples_parse_clean(self, app):
        entries = default_registry().parse(app, valid_config_samples()[app])
        assert entries

    @pytest.mark.parametrize("seed", range(5))
    def test_random_mode_choice_is_contained(self, seed):
        registry = default_registry()
        for app in APPS:
            mode, text = corrupt_text(valid_config_samples()[app], seed)
            assert mode in CORRUPTIONS
            try:
                registry.parse(app, text)
            except ConfigParseError:
                pass

    def test_parse_wraps_arbitrary_failures(self):
        class ExplodingParser(ConfigParser):
            app = "boom"

            def parse_text(self, text):
                raise IndexError("tokenizer walked off the end")

        with pytest.raises(ConfigParseError, match="IndexError"):
            ExplodingParser().parse("whatever")


class TestCorruptionDeterminism:
    @pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
    def test_same_seed_same_output(self, mode):
        text = valid_config_samples()["apache"]
        assert CORRUPTIONS[mode](text, 13) == CORRUPTIONS[mode](text, 13)

    def test_different_seeds_differ(self):
        text = valid_config_samples()["apache"]
        outputs = {CORRUPTIONS["truncate"](text, seed) for seed in range(10)}
        assert len(outputs) > 1

    def test_corrupt_text_mode_choice_is_seeded(self):
        text = valid_config_samples()["mysql"]
        assert corrupt_text(text, 4) == corrupt_text(text, 4)


def _image_with(app, text, image_id="img-1"):
    image = SystemImage(image_id)
    image.add_config_file(ConfigFile(app, f"/etc/{app}.conf", text))
    return image


class TestPoisoning:
    def test_poison_image_guarantees_parse_failure(self):
        image = _image_with("apache", valid_config_samples()["apache"])
        poisoned = poison_image(image)
        with pytest.raises(ConfigParseError):
            default_registry().parse(
                "apache", poisoned.config_files("apache")[0].text
            )
        # the original is untouched
        default_registry().parse("apache", image.config_files("apache")[0].text)

    def test_poison_image_requires_poisonable_app(self):
        image = _image_with("sshd", valid_config_samples()["sshd"])
        assert poisonable_app(image) is None
        with pytest.raises(ValueError, match="no poisonable config"):
            poison_image(image)

    def test_poison_corpus_is_deterministic(self):
        images = [
            _image_with("mysql", valid_config_samples()["mysql"], f"img-{i}")
            for i in range(10)
        ]
        _, ids_a = poison_corpus(images, 3, seed=9)
        _, ids_b = poison_corpus(images, 3, seed=9)
        assert ids_a == ids_b
        assert len(ids_a) == 3

    def test_poison_corpus_preserves_order_and_rest(self):
        images = [
            _image_with("php", valid_config_samples()["php"], f"img-{i}")
            for i in range(6)
        ]
        poisoned, ids = poison_corpus(images, 2, seed=1)
        assert [image.image_id for image in poisoned] == [
            image.image_id for image in images
        ]
        for original, out in zip(images, poisoned):
            if original.image_id not in ids:
                assert out is original

    def test_poison_corpus_rejects_impossible_count(self):
        images = [_image_with("sshd", valid_config_samples()["sshd"])]
        with pytest.raises(ValueError, match="cannot poison"):
            poison_corpus(images, 1, seed=0)


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            state_dir=str(tmp_path), crash={"a": 2}, hang={"b": 1},
            hang_seconds=0.5,
        )
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored.crash == {"a": 2}
        assert restored.hang == {"b": 1}
        assert restored.hang_seconds == 0.5
        assert restored.coordinator_pid == os.getpid()

    def test_coordinator_crash_raises_not_exits(self, tmp_path):
        plan = FaultPlan.crash_once(tmp_path, "img-1")
        image = _image_with("mysql", valid_config_samples()["mysql"], "img-1")
        with pytest.raises(FaultInjected, match="crash"):
            plan.hook(image)

    def test_budget_burns_out(self, tmp_path):
        plan = FaultPlan.crash_once(tmp_path, "img-1")
        image = _image_with("mysql", valid_config_samples()["mysql"], "img-1")
        with pytest.raises(FaultInjected):
            plan.hook(image)
        plan.hook(image)  # budget exhausted: no fault
        assert plan.fires_so_far("img-1") == 1

    def test_unlisted_image_is_untouched(self, tmp_path):
        plan = FaultPlan.crash_always(tmp_path, "img-1")
        other = _image_with("mysql", valid_config_samples()["mysql"], "img-2")
        plan.hook(other)
        assert plan.fires_so_far("img-1") == 0

    def test_coordinator_hang_raises(self, tmp_path):
        plan = FaultPlan.hang_always(tmp_path, "img-1", hang_seconds=0.1)
        image = _image_with("mysql", valid_config_samples()["mysql"], "img-1")
        with pytest.raises(FaultInjected, match="hang"):
            plan.hook(image)

    def test_budget_is_shared_across_plan_copies(self, tmp_path):
        """Marker files coordinate firings across (worker) processes."""
        plan = FaultPlan.crash_once(tmp_path, "img-1")
        clone = FaultPlan.from_dict(plan.to_dict())
        image = _image_with("mysql", valid_config_samples()["mysql"], "img-1")
        with pytest.raises(FaultInjected):
            plan.hook(image)
        clone.hook(image)  # the clone sees the spent budget
        assert clone.fires_so_far("img-1") == 1

    def test_stop_hangs_releases_stall(self, tmp_path):
        import time

        plan = FaultPlan.hang_always(tmp_path, "img-1", hang_seconds=30.0)
        plan.stop_hangs()
        start = time.monotonic()
        plan._stall()
        assert time.monotonic() - start < 5.0
