"""Tests for full model-snapshot persistence."""

import json

import pytest

from repro.core.persistence import (
    load_model_snapshot,
    model_to_dict,
    save_model,
    summary_from_dict,
)
from repro.core.pipeline import EnCore


class TestSnapshotRoundtrip:
    def test_serialisable(self, trained_encore):
        data = model_to_dict(trained_encore.model)
        text = json.dumps(data)
        assert "rules" in json.loads(text)

    def test_roundtrip_preserves_stats(self, trained_encore, tmp_path):
        path = save_model(trained_encore.model, tmp_path / "model.json")
        summary, rules = load_model_snapshot(path)
        dataset = trained_encore.model.dataset
        assert len(summary) == len(dataset)
        assert summary.attributes() == dataset.attributes()
        assert len(rules) == trained_encore.model.rule_count
        for attribute in dataset.attributes()[:20]:
            original = dataset.stats(attribute)
            restored = summary.stats(attribute)
            assert restored.type is original.type
            assert restored.value_counts == original.value_counts
            assert restored.entropy == pytest.approx(original.entropy)
            assert restored.type_agreement == pytest.approx(original.type_agreement)

    def test_entry_names_preserved(self, trained_encore, tmp_path):
        path = save_model(trained_encore.model, tmp_path / "model.json")
        summary, _ = load_model_snapshot(path)
        assert summary.entry_names() == trained_encore.model.dataset.entry_names()

    def test_augmented_marker_preserved(self, trained_encore, tmp_path):
        path = save_model(trained_encore.model, tmp_path / "model.json")
        summary, _ = load_model_snapshot(path)
        assert summary.is_augmented("mysql:mysqld/datadir.owner")
        assert not summary.is_augmented("mysql:mysqld/datadir")
        assert summary.is_augmented("env:OS.DistName")

    def test_version_check(self, trained_encore):
        data = model_to_dict(trained_encore.model)
        data["version"] = 42
        with pytest.raises(ValueError):
            summary_from_dict(data)

    def test_provenance_round_trip(self, trained_encore, tmp_path):
        """candidate_pairs and telemetry survive save → load → summary()."""
        from repro.core.persistence import load_snapshot

        model = trained_encore.model
        assert model.inference.candidate_pairs > 0
        path = save_model(model, tmp_path / "model.json")
        snapshot = load_snapshot(path)
        assert snapshot.candidate_pairs == model.inference.candidate_pairs
        assert snapshot.telemetry == model.telemetry

        fresh = EnCore()
        fresh.load_model(path)
        summary = fresh.model.summary()
        assert summary["candidate_pairs"] == model.inference.candidate_pairs
        assert summary["telemetry"] == model.telemetry

    def test_v1_snapshots_still_load(self, trained_encore):
        """Pre-provenance snapshots load with empty provenance."""
        from repro.core.persistence import snapshot_from_dict

        data = model_to_dict(trained_encore.model)
        data["version"] = 1
        del data["candidate_pairs"]
        del data["telemetry"]
        snapshot = snapshot_from_dict(data)
        assert snapshot.candidate_pairs == 0
        assert snapshot.telemetry == {}
        assert len(snapshot.rules) == trained_encore.model.rule_count


def _downgrade(data, version):
    """Strip a v3 model dict down to the surface of an older version."""
    import copy

    old = copy.deepcopy(data)
    old["version"] = version
    old.pop("dataset_fingerprint", None)
    for rule in old["rules"]:
        rule.pop("provenance", None)
    if version < 2:
        old.pop("candidate_pairs", None)
        old.pop("telemetry", None)
    return old


class TestSnapshotMigration:
    """v1/v2 snapshots migrate to the v3 in-memory model and back."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_versions_roundtrip_to_v3(self, trained_encore, tmp_path,
                                          version):
        from repro.core.persistence import (
            SNAPSHOT_VERSION, load_snapshot, snapshot_from_dict,
        )

        data = model_to_dict(trained_encore.model)
        old = _downgrade(data, version)
        snapshot = snapshot_from_dict(old)
        # provenance defaults: absent in old snapshots, None after load
        assert all(rule.provenance is None for rule in snapshot.rules)
        assert snapshot.dataset_fingerprint == ""

        # install and re-save: the rewritten snapshot is v3
        fresh = EnCore()
        (tmp_path / "old.json").write_text(json.dumps(old))
        fresh.load_model(tmp_path / "old.json")
        resaved = fresh.save_model(tmp_path / "new.json")
        rewritten = json.loads(resaved.read_text())
        assert rewritten["version"] == SNAPSHOT_VERSION
        migrated = load_snapshot(resaved)
        assert len(migrated.rules) == len(snapshot.rules)

    def test_v3_snapshot_carries_provenance(self, trained_encore, tmp_path):
        from repro.core.persistence import load_snapshot

        path = save_model(trained_encore.model, tmp_path / "model.json")
        snapshot = load_snapshot(path)
        for rule in snapshot.rules:
            assert rule.provenance is not None
            assert rule.provenance.decision == "kept"
            assert len(rule.provenance.contributing_images) == rule.support
        assert (snapshot.dataset_fingerprint
                == trained_encore.model.dataset.fingerprint())

    def test_v3_check_identical_to_v1_check(self, trained_encore, tmp_path,
                                            held_out_image):
        """Provenance is evidence, not behaviour: detection unchanged."""
        data = model_to_dict(trained_encore.model)
        (tmp_path / "v1.json").write_text(json.dumps(_downgrade(data, 1)))
        (tmp_path / "v3.json").write_text(json.dumps(data))
        old, new = EnCore(), EnCore()
        old.load_model(tmp_path / "v1.json")
        new.load_model(tmp_path / "v3.json")
        old_report = old.check(held_out_image)
        new_report = new.check(held_out_image)
        assert ([(w.kind, w.attribute) for w in old_report.warnings]
                == [(w.kind, w.attribute) for w in new_report.warnings])

    def test_load_rules_still_requires_model(self, tmp_path):
        with pytest.raises(RuntimeError):
            EnCore().load_rules(tmp_path / "rules.json")


class TestCheckingFromSnapshot:
    def test_check_without_training(self, trained_encore, tmp_path, held_out_image):
        """The headline property: ship the snapshot, check anywhere."""
        path = trained_encore.save_model(tmp_path / "model.json")
        fresh = EnCore()
        fresh.load_model(path)
        report = fresh.check(held_out_image)
        reference = trained_encore.check(held_out_image)
        assert [w.attribute for w in report.warnings] == [
            w.attribute for w in reference.warnings
        ]

    def test_snapshot_detects_defects(self, trained_encore, tmp_path, held_out_image):
        path = trained_encore.save_model(tmp_path / "model.json")
        fresh = EnCore()
        fresh.load_model(path)
        broken = held_out_image.copy("snap-broken")
        datadir = None
        for line in broken.config_file("mysql").text.splitlines():
            if line.strip().startswith("datadir"):
                datadir = line.split("=", 1)[1].strip()
        broken.fs.chown(datadir, owner="root", group="root")
        report = fresh.check(broken)
        assert report.rank_of_attribute("mysqld/datadir") is not None

    def test_save_requires_model(self, tmp_path):
        with pytest.raises(RuntimeError):
            EnCore().save_model(tmp_path / "x.json")


class TestCliModelFlow:
    def test_train_then_check_with_model(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        main(["generate", "--out", str(corpus), "--count", "20", "--seed", "3"])
        model_path = tmp_path / "model.json"
        rc = main([
            "train", "--training", str(corpus), "--model", str(model_path),
        ])
        assert rc == 0 and model_path.exists()
        target = sorted(corpus.glob("*.json"))[0]
        rc = main(["check", "--model", str(model_path), "--target", str(target)])
        out = capsys.readouterr().out
        assert "model snapshot loaded" in out
        assert "EnCore report" in out

    def test_check_without_training_or_model_fails(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check", "--target", str(tmp_path / "x.json")])


class TestSnapshotCorrupt:
    """Damaged snapshot files surface as typed, recoverable errors."""

    def test_invalid_json_wrapped(self, tmp_path):
        from repro.core.persistence import SnapshotCorruptError, load_snapshot

        path = tmp_path / "model.json"
        path.write_text("{truncated mid-wri")
        with pytest.raises(SnapshotCorruptError, match="invalid JSON") as info:
            load_snapshot(path)
        assert info.value.path == str(path)
        assert "repro train" in str(info.value)

    def test_wrong_top_level_type_wrapped(self, tmp_path):
        from repro.core.persistence import SnapshotCorruptError, load_snapshot

        path = tmp_path / "model.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotCorruptError, match="expected a JSON object"):
            load_snapshot(path)

    def test_missing_fields_wrapped(self, tmp_path):
        from repro.core.persistence import SnapshotCorruptError, load_snapshot

        path = tmp_path / "model.json"
        path.write_text(json.dumps({"version": 3}))
        with pytest.raises(SnapshotCorruptError, match="missing or malformed"):
            load_snapshot(path)

    def test_unsupported_version_is_not_corruption(self, tmp_path):
        """An intact file from a newer writer propagates its own error."""
        from repro.core.persistence import SnapshotCorruptError, load_snapshot

        path = tmp_path / "model.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="unsupported") as info:
            load_snapshot(path)
        assert not isinstance(info.value, SnapshotCorruptError)

    def test_is_a_value_error(self):
        from repro.core.persistence import SnapshotCorruptError

        assert issubclass(SnapshotCorruptError, ValueError)

    def test_cli_check_reports_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        main(["generate", "--out", str(corpus), "--count", "1", "--seed", "3"])
        target = next(corpus.glob("*.json"))
        model = tmp_path / "model.json"
        model.write_text('{"version": 3, "stats":')
        rc = main([
            "check", "--model", str(model), "--target", str(target),
            "--no-ledger",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "corrupt model snapshot" in err
        assert "Traceback" not in err
