"""Tests for the data assembler and assembled datasets (paper §4)."""

import pytest

from repro.core.assembler import DataAssembler, attribute_counts
from repro.core.collector import DataCollector
from repro.core.dataset import AssembledSystem
from repro.core.types import ConfigType
from repro.sysmodel.image import ConfigFile, SystemImage


@pytest.fixture()
def assembler():
    return DataAssembler()


class TestAssembleSingle:
    def test_original_entries_qualified(self, assembler, mysql_image):
        system = assembler.assemble(mysql_image)
        assert "mysql:mysqld/datadir" in system
        assert system.value("mysql:mysqld/datadir") == "/var/lib/mysql"

    def test_augmented_columns_attached(self, assembler, mysql_image):
        system = assembler.assemble(mysql_image)
        assert system.value("mysql:mysqld/datadir.owner") == "mysql"
        assert system.value("mysql:mysqld/datadir.type") == "dir"
        assert system.is_augmented("mysql:mysqld/datadir.owner")
        assert not system.is_augmented("mysql:mysqld/datadir")

    def test_env_columns_attached(self, assembler, mysql_image):
        system = assembler.assemble(mysql_image)
        assert system.value("env:OS.DistName") is not None

    def test_no_augmentation_mode(self, mysql_image):
        plain = DataAssembler(augment_environment=False)
        system = plain.assemble(mysql_image)
        assert "mysql:mysqld/datadir" in system
        assert "mysql:mysqld/datadir.owner" not in system
        assert not any(a.startswith("env:") for a in system.attributes())

    def test_attribute_counts_grow_with_augmentation(self, mysql_image):
        counts = attribute_counts(mysql_image)
        assert counts["augmented"] > counts["original"]

    def test_assemble_from_collection(self, assembler, mysql_image):
        collection = DataCollector().collect(mysql_image)
        system = assembler.assemble_raw(collection)
        direct = assembler.assemble(mysql_image)
        assert system.as_row() == direct.as_row()

    def test_multi_occurrence_entries(self, assembler):
        image = SystemImage("multi")
        image.fs.add_file("/etc/httpd/modules/mod_a.so")
        image.fs.add_file("/etc/httpd/modules/mod_b.so")
        image.add_config_file(
            ConfigFile(
                "apache", "/etc/httpd/conf/httpd.conf",
                "LoadModule a_module modules/mod_a.so\n"
                "LoadModule b_module modules/mod_b.so\n",
            )
        )
        system = assembler.assemble(image)
        values = system.values_of("apache:LoadModule/arg2")
        assert len(values) == 2


class TestAssembledSystem:
    def test_values_of_single(self, assembler, mysql_image):
        system = assembler.assemble(mysql_image)
        assert len(system.values_of("mysql:mysqld/user")) == 1
        assert system.values_of("missing:attr") == []

    def test_occurrence_count_counts_repeats(self):
        image = SystemImage("occ")
        system = AssembledSystem(image)
        system.set("a:x", "1", ConfigType.NUMBER)
        system.set("a:x", "2", ConfigType.NUMBER)
        system.set("a:y", "3", ConfigType.NUMBER)
        assert system.occurrence_count() == 3
        assert len(system) == 2


class TestDataset:
    def test_stats_basic(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:10])
        stats = dataset.stats("mysql:mysqld/user")
        assert stats is not None
        assert stats.type is ConfigType.USER_NAME
        assert stats.present_count == 10
        assert stats.seen("mysql")
        assert stats.cardinality == 1
        assert stats.entropy == 0.0
        assert stats.inverse_change_frequency() == 1.0

    def test_attributes_of_type(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:10])
        users = dataset.attributes_of_type(ConfigType.USER_NAME)
        assert "mysql:mysqld/user" in users

    def test_entry_names_exclude_augmented_and_env(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:5])
        names = dataset.entry_names()
        assert "mysqld/datadir" in names["mysql"]
        assert not any(n.endswith(".owner") for n in names["mysql"])
        assert "env" not in names

    def test_entry_names_keep_dotted_php_entries(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:5])
        # PHP names legitimately contain dots and must survive.
        assert any("." in n for n in dataset.entry_names()["php"])

    def test_rows_with_missing_covers_universe(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:5])
        rows = dataset.rows_with_missing()
        universe = set(dataset.attributes())
        for row in rows:
            assert set(row) == universe

    def test_type_agreement_range(self, assembler, small_corpus):
        dataset = assembler.assemble_corpus(small_corpus[:10])
        for attribute in dataset.attributes():
            stats = dataset.stats(attribute)
            assert 0.0 < stats.type_agreement <= 1.0

    def test_is_free_varying_thresholds(self):
        from repro.core.dataset import AttributeStats

        stable = AttributeStats("a", ConfigType.STRING, 60, (("x", 60),), 0.0)
        assert not stable.is_free_varying()
        diverse = AttributeStats(
            "b", ConfigType.STRING, 60,
            tuple((f"v{i}", 1) for i in range(40)), 3.0,
        )
        assert diverse.is_free_varying()
