"""Tests for the association-rule-mining substrate.

Apriori and FP-Growth are independent implementations of the same
contract; the cross-check property test is the main correctness oracle.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.apriori import apriori
from repro.mining.association import AssociationRule, mine_association_rules
from repro.mining.entropy import (
    DEFAULT_ENTROPY_THRESHOLD,
    shannon_entropy,
    two_value_threshold,
    value_entropy,
)
from repro.mining.fpgrowth import FPTree, fpgrowth
from repro.mining.itemsets import (
    Itemset,
    ItemsetBudgetExceeded,
    TransactionTable,
    discretize_binomial,
)

CLASSIC = TransactionTable(
    [
        ["bread", "milk"],
        ["bread", "diapers", "beer", "eggs"],
        ["milk", "diapers", "beer", "cola"],
        ["bread", "milk", "diapers", "beer"],
        ["bread", "milk", "diapers", "cola"],
    ]
)


def as_set(itemsets):
    return {(iset.items, iset.support) for iset in itemsets}


class TestTransactionTable:
    def test_len_and_items(self):
        assert len(CLASSIC) == 5
        assert "beer" in CLASSIC.items()

    def test_support_counting(self):
        assert CLASSIC.support(["bread", "milk"]) == 3
        assert CLASSIC.support(["beer", "cola"]) == 1
        assert CLASSIC.support([]) == 5

    def test_item_counts(self):
        counts = CLASSIC.item_counts()
        assert counts["bread"] == 4
        assert counts["cola"] == 2

    def test_min_count_bounds(self):
        assert CLASSIC.min_count(0.0) == 1
        assert CLASSIC.min_count(1.0) == 5
        with pytest.raises(ValueError):
            CLASSIC.min_count(1.5)


class TestItemset:
    def test_negative_support_rejected(self):
        with pytest.raises(ValueError):
            Itemset(frozenset({"a"}), -1)

    def test_len_contains(self):
        iset = Itemset(frozenset({"a", "b"}), 2)
        assert len(iset) == 2 and "a" in iset


class TestApriori:
    def test_classic_dataset(self):
        itemsets = apriori(CLASSIC, min_support=0.6)
        found = as_set(itemsets)
        assert (frozenset({"bread"}), 4) in found
        assert (frozenset({"milk", "diapers"}), 3) in found
        assert (frozenset({"beer", "diapers"}), 3) in found
        # cola appears twice: below 60% support
        assert not any("cola" in items for items, _ in found)

    def test_empty_table(self):
        assert apriori(TransactionTable([]), 0.5) == []

    def test_max_len(self):
        itemsets = apriori(CLASSIC, 0.4, max_len=1)
        assert all(len(i) == 1 for i in itemsets)

    def test_budget_exceeded(self):
        with pytest.raises(ItemsetBudgetExceeded):
            apriori(CLASSIC, 0.1, max_itemsets=3)


class TestFPGrowth:
    def test_classic_dataset_matches_apriori(self):
        a = as_set(apriori(CLASSIC, 0.6))
        f = as_set(fpgrowth(CLASSIC, 0.6))
        assert a == f

    def test_single_transaction(self):
        table = TransactionTable([["a", "b", "c"]])
        itemsets = fpgrowth(table, 1.0)
        assert (frozenset({"a", "b", "c"}), 1) in as_set(itemsets)
        assert len(itemsets) == 7  # all non-empty subsets

    def test_empty_table(self):
        assert fpgrowth(TransactionTable([]), 0.5) == []

    def test_budget_exceeded(self):
        with pytest.raises(ItemsetBudgetExceeded):
            fpgrowth(CLASSIC, 0.1, max_itemsets=3)

    def test_max_len(self):
        itemsets = fpgrowth(CLASSIC, 0.4, max_len=2)
        assert all(len(i) <= 2 for i in itemsets)

    def test_tree_node_count(self):
        order = {"a": 0, "b": 1}
        tree = FPTree.build([(["a", "b"], 1), (["a"], 1)], order)
        assert tree.node_count() == 2

    def test_prefix_paths(self):
        order = {"a": 0, "b": 1, "c": 2}
        tree = FPTree.build([(["a", "b", "c"], 1), (["a", "c"], 1)], order)
        paths = tree.prefix_paths("c")
        assert sorted(tuple(p) for p, _ in paths) == [("a",), ("a", "b")]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from("abcdef"), max_size=5),
        min_size=0,
        max_size=12,
    ),
    st.sampled_from([0.2, 0.4, 0.6, 0.9]),
)
def test_apriori_fpgrowth_agree(transactions, min_support):
    """The two miners are independent implementations of one contract."""
    table = TransactionTable(transactions)
    assert as_set(apriori(table, min_support)) == as_set(fpgrowth(table, min_support))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from("abcde"), max_size=4),
        min_size=1,
        max_size=10,
    )
)
def test_itemset_supports_are_exact(transactions):
    table = TransactionTable(transactions)
    for iset in fpgrowth(table, 0.3):
        assert table.support(iset.items) == iset.support


class TestAssociationRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AssociationRule(frozenset(), frozenset({"a"}), 1, 0.5)
        with pytest.raises(ValueError):
            AssociationRule(frozenset({"a"}), frozenset({"a"}), 1, 0.5)
        with pytest.raises(ValueError):
            AssociationRule(frozenset({"a"}), frozenset({"b"}), 1, 1.5)

    def test_mined_rules_meet_confidence(self):
        itemsets = fpgrowth(CLASSIC, 0.4)
        rules = mine_association_rules(itemsets, CLASSIC, min_confidence=0.8)
        assert rules
        for rule in rules:
            ante = CLASSIC.support(rule.antecedent)
            joint = CLASSIC.support(rule.antecedent | rule.consequent)
            assert joint / ante >= 0.8
            assert math.isclose(rule.confidence, joint / ante)

    def test_str_rendering(self):
        rule = AssociationRule(frozenset({"a"}), frozenset({"b"}), 3, 0.75)
        assert "->" in str(rule) and "0.75" in str(rule)


class TestDiscretization:
    def test_items_are_attr_value_pairs(self):
        rows = [{"a": "1", "b": "x"}, {"a": "2"}]
        table, universe = discretize_binomial(rows)
        assert set(universe) == {"a=1", "a=2", "b=x"}
        assert len(table) == 2

    def test_none_skipped_by_default(self):
        table, universe = discretize_binomial([{"a": None}])
        assert universe == []

    def test_missing_marker(self):
        _, universe = discretize_binomial([{"a": None}], missing_marker="<absent>")
        assert universe == ["a=<absent>"]


class TestEntropy:
    def test_uniform_two_values(self):
        assert math.isclose(shannon_entropy([0.5, 0.5]), math.log(2))

    def test_paper_threshold_derivation(self):
        """Ht = 0.325 is the entropy of a 90/10 two-value split."""
        assert abs(two_value_threshold(0.9) - DEFAULT_ENTROPY_THRESHOLD) < 0.001

    def test_constant_is_zero(self):
        assert value_entropy(["x", "x", "x"]) == 0.0

    def test_none_excluded(self):
        assert value_entropy([None, "x", None]) == 0.0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            shannon_entropy([0.5, 0.2])
        with pytest.raises(ValueError):
            shannon_entropy([1.5, -0.5])

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=30))
    def test_entropy_bounds(self, values):
        h = value_entropy(values)
        assert 0.0 <= h <= math.log(3) + 1e-9

    def test_more_diversity_more_entropy(self):
        assert value_entropy(["a"] * 9 + ["b"]) < value_entropy(["a"] * 5 + ["b"] * 5)
