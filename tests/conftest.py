"""Shared fixtures for the test suite.

Corpus generation dominates test time, so the expensive fixtures are
session-scoped; tests must treat them as read-only (use ``.copy()`` on an
image before mutating it).
"""

import pytest

from repro.core.pipeline import EnCore
from repro.corpus.generator import Ec2CorpusGenerator
from repro.sysmodel.image import ConfigFile, SystemImage


@pytest.fixture()
def empty_image():
    """A bare image with defaults only."""
    return SystemImage("test-0001")


@pytest.fixture()
def mysql_image():
    """A hand-built image with a minimal coherent MySQL setup (Fig. 1b)."""
    image = SystemImage("mysql-img")
    image.accounts.ensure_service_account("mysql", 27)
    image.fs.add_dir("/var/lib/mysql", owner="mysql", group="mysql", mode=0o700)
    image.fs.add_file("/var/log/mysqld.log", owner="mysql", group="mysql", mode=0o640)
    image.add_config_file(
        ConfigFile(
            "mysql", "/etc/my.cnf",
            "[mysqld]\n"
            "datadir = /var/lib/mysql\n"
            "user = mysql\n"
            "port = 3306\n"
            "log_error = /var/log/mysqld.log\n",
        )
    )
    return image


@pytest.fixture(scope="session")
def small_corpus():
    """60 multi-app images (read-only)."""
    return Ec2CorpusGenerator(seed=101).generate(60)


@pytest.fixture(scope="session")
def trained_encore(small_corpus):
    """EnCore trained on the small corpus (read-only)."""
    encore = EnCore()
    encore.train(small_corpus)
    return encore


@pytest.fixture(scope="session")
def held_out_image():
    """An image from the same population, outside the training set."""
    return Ec2CorpusGenerator(seed=101).generate_one(999)
