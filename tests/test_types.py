"""Tests for the semantic type system (paper Table 4, §4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    ConfigType,
    TypeDefinition,
    TypeInferencer,
    TypeRegistry,
    parse_number,
    parse_size_bytes,
)
from repro.sysmodel.image import SystemImage


@pytest.fixture()
def env_image():
    image = SystemImage("types-img")
    image.accounts.ensure_service_account("mysql", 27)
    image.fs.add_dir("/var/lib/mysql", owner="mysql")
    image.fs.add_file("/etc/php.ini")
    image.fs.add_file("/etc/httpd/modules/mod_ssl.so")
    return image


@pytest.fixture()
def inferencer():
    return TypeInferencer()


class TestParsers:
    @pytest.mark.parametrize(
        "literal,expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("8K", 8 << 10),
            ("64M", 64 << 20),
            ("2G", 2 << 30),
            ("1T", 1 << 40),
            ("64m", 64 << 20),
            ("16MB", 16 << 20),
        ],
    )
    def test_parse_size(self, literal, expected):
        assert parse_size_bytes(literal) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12X", "-5M", "1.5G"])
    def test_parse_size_rejects(self, bad):
        assert parse_size_bytes(bad) is None

    def test_parse_number(self):
        assert parse_number("12") == 12.0
        assert parse_number("-3.5") == -3.5
        assert parse_number("x") is None


class TestSyntacticInference:
    """Step 1 only — no environment."""

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("http://example.com/x", ConfigType.URL),
            ("10.0.0.1", ConfigType.IP_ADDRESS),
            ("::1", ConfigType.IP_ADDRESS),
            ("text/html", ConfigType.MIME_TYPE),
            ("64M", ConfigType.SIZE),
            ("on", ConfigType.BOOLEAN),
            ("Off", ConfigType.BOOLEAN),
            ("0", ConfigType.BOOLEAN),  # the deliberate Table 11 confusion
            ("12345678", ConfigType.NUMBER),
            ("", ConfigType.STRING),
        ],
    )
    def test_no_environment(self, inferencer, value, expected):
        assert inferencer.infer(value, None) is expected

    def test_syntactic_only_path(self, inferencer):
        assert inferencer.infer_syntactic_only("/no/such/path") is ConfigType.FILE_PATH


class TestSemanticVerification:
    """Step 2 — environment-checked."""

    def test_existing_path_is_filepath(self, inferencer, env_image):
        assert inferencer.infer("/var/lib/mysql", env_image) is ConfigType.FILE_PATH

    def test_missing_path_demoted(self, inferencer, env_image):
        # Syntactically a path, but absent from the filesystem.
        assert inferencer.infer("/does/not/exist", env_image) is ConfigType.STRING

    def test_glob_is_not_a_path(self, inferencer, env_image):
        assert inferencer.infer("/var/lib/*", env_image) is ConfigType.STRING

    def test_known_user(self, inferencer, env_image):
        assert inferencer.infer("mysql", env_image) is ConfigType.USER_NAME

    def test_unknown_user_demoted(self, inferencer, env_image):
        assert inferencer.infer("ghostuser", env_image) is ConfigType.STRING

    def test_registered_port(self, inferencer, env_image):
        assert inferencer.infer("3306", env_image) is ConfigType.PORT_NUMBER

    def test_out_of_range_port(self, inferencer, env_image):
        assert inferencer.infer("99999", env_image) is ConfigType.NUMBER

    def test_partial_path_verified_against_fs(self, inferencer, env_image):
        assert inferencer.infer("modules/mod_ssl.so", env_image) is ConfigType.PARTIAL_FILE_PATH

    def test_partial_path_unverified(self, inferencer, env_image):
        assert inferencer.infer("modules/none.so", env_image) is not ConfigType.PARTIAL_FILE_PATH

    def test_filename_verified(self, inferencer, env_image):
        assert inferencer.infer("php.ini", env_image) is ConfigType.FILE_NAME

    def test_charset(self, inferencer, env_image):
        assert inferencer.infer("utf8", env_image) is ConfigType.CHARSET

    def test_language(self, inferencer, env_image):
        assert inferencer.infer("de", env_image) is ConfigType.LANGUAGE

    def test_bad_ipv4_octets(self, inferencer, env_image):
        assert inferencer.infer("999.1.1.1", env_image) is not ConfigType.IP_ADDRESS


class TestVerify:
    def test_verify_respects_environment(self, inferencer, env_image):
        assert inferencer.verify("/var/lib/mysql", ConfigType.FILE_PATH, env_image)
        assert not inferencer.verify("/missing", ConfigType.FILE_PATH, env_image)

    def test_trivial_types_always_pass(self, inferencer, env_image):
        assert inferencer.verify("anything", ConfigType.STRING, env_image)
        assert inferencer.verify("anything", ConfigType.NUMBER, env_image)

    def test_permission_type(self, inferencer):
        assert inferencer.verify("644", ConfigType.PERMISSION, None)
        assert inferencer.verify("0750", ConfigType.PERMISSION, None)
        assert not inferencer.verify("999", ConfigType.PERMISSION, None)

    def test_enum_always_passes(self, inferencer):
        assert inferencer.verify("dir", ConfigType.ENUM, None)


class TestCustomTypes:
    def test_custom_registered_first(self, env_image):
        registry = TypeRegistry()
        registry.register(
            TypeDefinition(
                ConfigType.URL,  # reuse the carrier, custom matcher
                syntactic=lambda v: v.startswith("custom:"),
                description="custom scheme",
            )
        )
        inferencer = TypeInferencer(registry)
        assert inferencer.infer("custom:abc", env_image) is ConfigType.URL

    def test_definition_for(self):
        registry = TypeRegistry()
        assert registry.definition_for(ConfigType.FILE_PATH) is not None
        assert registry.definition_for(ConfigType.ENUM) is None


@given(st.text(max_size=30))
def test_inference_total_function(value):
    """Inference never raises, whatever the value looks like."""
    inferencer = TypeInferencer()
    result = inferencer.infer(value, None)
    assert isinstance(result, ConfigType)


@given(st.integers(min_value=0, max_value=10**7), st.sampled_from(["K", "M", "G", "T"]))
def test_size_parse_format_consistency(number, unit):
    from repro.corpus.generator import format_size

    literal = f"{number}{unit}"
    parsed = parse_size_bytes(literal)
    assert parsed is not None
    # format_size returns the shortest exact representation; reparsing it
    # must give the same byte count.
    assert parse_size_bytes(format_size(parsed)) == parsed
