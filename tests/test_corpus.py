"""Tests for the catalog and corpus generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import ConfigType
from repro.corpus.catalog import (
    TABLE1_EXPECTED,
    app_catalog,
    catalog_summary,
    full_catalog,
    ground_truth_types,
)
from repro.corpus.generator import (
    Ec2CorpusGenerator,
    GenerationProfile,
    format_size,
    _extract_value,
    _replace_value,
)
from repro.corpus.private_cloud import PrivateCloudGenerator
from repro.parsers.registry import default_registry


class TestCatalog:
    @pytest.mark.parametrize("app", ["apache", "mysql", "php", "sshd"])
    def test_table1_counts_exact(self, app):
        """The catalog reproduces the paper's Table 1 row for row."""
        summary = catalog_summary()[app]
        total, env, corr = TABLE1_EXPECTED[app]
        assert summary["total"] == total
        assert summary["env_related"] == env
        assert summary["correlated"] == corr

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            app_catalog("nginx")

    def test_full_catalog_size(self):
        assert len(full_catalog()) == sum(t for t, _, _ in TABLE1_EXPECTED.values())

    def test_entries_have_choices(self):
        for entry in full_catalog():
            assert entry.choices, entry.name

    def test_names_unique_per_app(self):
        for app in TABLE1_EXPECTED:
            names = [e.name for e in app_catalog(app)]
            assert len(names) == len(set(names)), app

    def test_ground_truth_types(self):
        truth = ground_truth_types("mysql")
        assert truth["mysqld/datadir"] is ConfigType.FILE_PATH
        assert truth["mysqld/user"] is ConfigType.USER_NAME


class TestHelpers:
    def test_format_size(self):
        assert format_size(64 << 20) == "64M"
        assert format_size(2 << 30) == "2G"
        assert format_size(1000) == "1000"

    def test_extract_value(self):
        text = "[mysqld]\ndatadir = /var/lib/mysql\nuser = mysql\n"
        assert _extract_value(text, "datadir") == "/var/lib/mysql"
        assert _extract_value(text, "missing") is None

    def test_replace_value(self):
        text = "Timeout 60\nKeepAlive On\n"
        new, old = _replace_value(text, "Timeout", "300")
        assert old == "60"
        assert "Timeout 300" in new
        assert "KeepAlive On" in new

    def test_replace_value_prefix_safe(self):
        """'Timeout' must not match 'TimeoutAction'."""
        text = "TimeoutAction error\nTimeout 60\n"
        new, old = _replace_value(text, "Timeout", "1")
        assert old == "60"
        assert "TimeoutAction error" in new

    def test_replace_missing_returns_none(self):
        _, old = _replace_value("A 1\n", "B", "2")
        assert old is None


class TestEc2Generator:
    def test_deterministic(self):
        a = Ec2CorpusGenerator(seed=5).generate_one(3)
        b = Ec2CorpusGenerator(seed=5).generate_one(3)
        assert a.config_file("mysql").text == b.config_file("mysql").text
        assert a.fs.file_list() == b.fs.file_list()

    def test_seeds_differ(self):
        a = Ec2CorpusGenerator(seed=5).generate_one(3)
        b = Ec2CorpusGenerator(seed=6).generate_one(3)
        assert a.config_file("apache").text != b.config_file("apache").text

    def test_configs_parse(self, small_corpus):
        registry = default_registry()
        for image in small_corpus[:8]:
            for config in image.config_files():
                entries = registry.parse(config.app, config.text)
                assert entries, config.app

    def test_environment_coherence_datadir(self, small_corpus):
        """datadir exists as a directory owned by the mysql user."""
        for image in small_corpus[:10]:
            text = image.config_file("mysql").text
            datadir = _extract_value(text, "datadir")
            user = _extract_value(text, "user")
            meta = image.fs.get(datadir)
            assert meta is not None and meta.is_dir
            assert meta.owner == user

    def test_environment_coherence_extension_dir(self, small_corpus):
        for image in small_corpus[:10]:
            ext_dir = _extract_value(image.config_file("php").text, "extension_dir")
            assert image.fs.is_dir(ext_dir)

    def test_loadmodule_paths_resolve(self, small_corpus):
        """ServerRoot + LoadModule arg2 exists (the Figure 4b invariant)."""
        for image in small_corpus[:10]:
            text = image.config_file("apache").text
            server_root = _extract_value(text, "ServerRoot")
            for line in text.splitlines():
                if line.startswith("LoadModule"):
                    rel = line.split()[-1]
                    assert image.fs.is_file(f"{server_root}/{rel}"), line

    def test_php_size_ordering_mostly_holds(self, small_corpus):
        from repro.core.types import parse_size_bytes

        holds = 0
        for image in small_corpus:
            text = image.config_file("php").text
            upload = parse_size_bytes(_extract_value(text, "upload_max_filesize"))
            post = parse_size_bytes(_extract_value(text, "post_max_size"))
            if upload <= post:
                holds += 1
        assert holds >= len(small_corpus) * 0.9

    def test_dormant_hardware(self, small_corpus):
        assert all(not image.hardware.available for image in small_corpus[:5])

    def test_requested_apps_only(self):
        image = Ec2CorpusGenerator(seed=1, apps=("sshd",)).generate_one(0)
        assert image.apps() == ["sshd"]

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            Ec2CorpusGenerator(apps=("nginx",))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            GenerationProfile(noise_rate=0.5)
        with pytest.raises(ValueError):
            GenerationProfile(customization_level=2.0)

    def test_generate_wild_counts(self):
        generator = Ec2CorpusGenerator(seed=9)
        images, issues = generator.generate_wild(
            30, planted={"FilePath": 2, "Permission": 3, "ValueCompare": 4}
        )
        assert len(images) == 30
        assert len(issues) == 9
        categories = sorted({i.category for i in issues})
        assert categories == ["FilePath", "Permission", "ValueCompare"]

    def test_wild_issue_ids_point_at_real_images(self):
        generator = Ec2CorpusGenerator(seed=9)
        images, issues = generator.generate_wild(20)
        ids = {image.image_id for image in images}
        assert all(issue.image_id in ids for issue in issues)


class TestPrivateCloudGenerator:
    def test_running_with_hardware(self):
        image = PrivateCloudGenerator(seed=2).generate_one(0)
        assert image.running
        assert image.hardware.available
        assert image.image_id.startswith("vm-")

    def test_default_plant_matches_paper(self):
        generator = PrivateCloudGenerator(seed=2)
        _, issues = generator.generate_wild(40)
        from collections import Counter

        counts = Counter(i.category for i in issues)
        assert counts["FilePath"] == 10
        assert counts["Permission"] == 3
        assert counts["ValueCompare"] == 11


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_any_index_generates_coherent_image(index):
    image = Ec2CorpusGenerator(seed=0).generate_one(index)
    datadir = _extract_value(image.config_file("mysql").text, "datadir")
    assert image.fs.is_dir(datadir)
