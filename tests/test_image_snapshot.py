"""Tests for SystemImage and JSON snapshots."""

import pytest

from repro.sysmodel.image import ConfigFile, SystemImage
from repro.sysmodel.snapshot import image_from_dict, image_to_dict, load_image, save_image


class TestConfigFile:
    def test_requires_app(self):
        with pytest.raises(ValueError):
            ConfigFile("", "/etc/x.conf", "")

    def test_requires_absolute_path(self):
        with pytest.raises(ValueError):
            ConfigFile("apache", "etc/httpd.conf", "")


class TestSystemImage:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            SystemImage("")

    def test_add_config_materialises_file(self, empty_image):
        empty_image.add_config_file(ConfigFile("mysql", "/etc/my.cnf", "[mysqld]\n"))
        assert empty_image.fs.is_file("/etc/my.cnf")

    def test_config_file_lookup(self, empty_image):
        empty_image.add_config_file(ConfigFile("mysql", "/etc/my.cnf", "x"))
        assert empty_image.config_file("mysql").text == "x"
        with pytest.raises(KeyError):
            empty_image.config_file("apache")

    def test_ambiguous_config_lookup_raises(self, empty_image):
        empty_image.add_config_file(ConfigFile("apache", "/etc/a.conf", ""))
        empty_image.add_config_file(ConfigFile("apache", "/etc/b.conf", ""))
        with pytest.raises(KeyError):
            empty_image.config_file("apache")

    def test_apps(self, empty_image):
        empty_image.add_config_file(ConfigFile("php", "/etc/php.ini", ""))
        empty_image.add_config_file(ConfigFile("mysql", "/etc/my.cnf", ""))
        assert empty_image.apps() == ["mysql", "php"]
        assert empty_image.has_app("php")
        assert not empty_image.has_app("sshd")

    def test_env_vars_only_when_running(self):
        dormant = SystemImage("a", env_vars={"PATH": "/bin"}, running=False)
        running = SystemImage("b", env_vars={"PATH": "/bin"}, running=True)
        assert dormant.env_var("PATH") is None
        assert running.env_var("PATH") == "/bin"

    def test_copy_isolates_mutations(self, mysql_image):
        clone = mysql_image.copy("clone")
        clone.fs.chown("/var/lib/mysql", owner="root")
        clone.replace_config_text("mysql", "[mysqld]\n")
        assert mysql_image.fs.get("/var/lib/mysql").owner == "mysql"
        assert "datadir" in mysql_image.config_file("mysql").text
        assert clone.image_id == "clone"

    def test_repr_mentions_apps(self, mysql_image):
        assert "mysql" in repr(mysql_image)


class TestSnapshot:
    def test_roundtrip_preserves_everything(self, mysql_image):
        data = image_to_dict(mysql_image)
        restored = image_from_dict(data)
        assert restored.image_id == mysql_image.image_id
        assert restored.fs.file_list() == mysql_image.fs.file_list()
        assert restored.accounts.user_list() == mysql_image.accounts.user_list()
        assert restored.config_file("mysql").text == mysql_image.config_file("mysql").text
        meta = restored.fs.get("/var/lib/mysql")
        assert meta.owner == "mysql" and meta.mode == 0o700

    def test_roundtrip_through_disk(self, mysql_image, tmp_path):
        path = save_image(mysql_image, tmp_path / "img.json")
        restored = load_image(path)
        assert image_to_dict(restored) == image_to_dict(mysql_image)

    def test_version_check(self, mysql_image):
        data = image_to_dict(mysql_image)
        data["version"] = 99
        with pytest.raises(ValueError):
            image_from_dict(data)

    def test_generated_image_roundtrip(self, small_corpus):
        image = small_corpus[0]
        restored = image_from_dict(image_to_dict(image))
        assert image_to_dict(restored) == image_to_dict(image)
