"""Tests for the configuration-file parsers."""

import pytest

from repro.parsers.apache import ApacheParser
from repro.parsers.base import ConfigEntry, ConfigParseError, dedupe_occurrences
from repro.parsers.keyvalue import KeyValueParser
from repro.parsers.mysql import MySQLParser
from repro.parsers.php import PHPIniParser
from repro.parsers.registry import ParserRegistry, default_registry
from repro.parsers.sshd import SSHDParser


def by_name(entries, name):
    return [e for e in entries if e.name == name]


class TestConfigEntry:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            ConfigEntry("a", "", "v")

    def test_qualified_name(self):
        assert ConfigEntry("mysql", "mysqld/port", "3306").qualified_name == "mysql:mysqld/port"

    def test_with_value(self):
        entry = ConfigEntry("php", "engine", "On", "/etc/php.ini", 3)
        copy = entry.with_value("Off")
        assert copy.value == "Off" and copy.line == 3 and copy.name == "engine"

    def test_dedupe_occurrences(self):
        entries = [
            ConfigEntry("a", "X", "1"),
            ConfigEntry("a", "X", "2"),
            ConfigEntry("a", "Y", "3"),
        ]
        deduped = dedupe_occurrences(entries)
        assert [e.occurrence for e in deduped] == [0, 1, 0]


class TestApacheParser:
    def test_simple_directives(self):
        entries = ApacheParser().parse_text("ServerRoot /etc/httpd\nTimeout 60\n")
        assert by_name(entries, "ServerRoot")[0].value == "/etc/httpd"
        assert by_name(entries, "Timeout")[0].value == "60"

    def test_comments_and_blanks_skipped(self):
        entries = ApacheParser().parse_text("# comment\n\nKeepAlive On # tail\n")
        assert len(entries) == 1
        assert entries[0].value == "On"

    def test_nested_sections(self):
        text = (
            "<VirtualHost *:80>\n"
            "  DocumentRoot /srv/www\n"
            "  <Directory /srv/www>\n"
            "    Options None\n"
            "  </Directory>\n"
            "</VirtualHost>\n"
        )
        entries = ApacheParser().parse_text(text)
        names = {e.name for e in entries}
        assert "VirtualHost/DocumentRoot" in names
        assert "VirtualHost/Directory/Options" in names
        assert "VirtualHost/VirtualHost.arg" in names

    def test_section_argument_recorded(self):
        entries = ApacheParser().parse_text("<Directory /var/www>\n</Directory>\n")
        args = by_name(entries, "Directory/Directory.arg")
        assert args and args[0].value == "/var/www"

    def test_unbalanced_section_raises(self):
        with pytest.raises(ConfigParseError):
            ApacheParser().parse_text("<Directory /x>\n")
        with pytest.raises(ConfigParseError):
            ApacheParser().parse_text("</Directory>\n")

    def test_mismatched_close_raises(self):
        with pytest.raises(ConfigParseError):
            ApacheParser().parse_text("<Directory /x>\n</VirtualHost>\n")

    def test_multiarg_directive_gets_arg_columns(self):
        entries = ApacheParser().parse_text(
            "LoadModule ssl_module modules/mod_ssl.so\n"
        )
        assert by_name(entries, "LoadModule/arg1")[0].value == "ssl_module"
        assert by_name(entries, "LoadModule/arg2")[0].value == "modules/mod_ssl.so"

    def test_repeated_directives_numbered(self):
        text = "LoadModule a_module m/a.so\nLoadModule b_module m/b.so\n"
        entries = ApacheParser().parse_text(text)
        loads = by_name(entries, "LoadModule")
        assert [e.occurrence for e in loads] == [0, 1]

    def test_quoted_values_unquoted(self):
        entries = ApacheParser().parse_text('ServerAdmin "admin@example.com"\n')
        assert entries[0].value == "admin@example.com"

    def test_line_numbers(self):
        entries = ApacheParser().parse_text("# c\nTimeout 5\n")
        assert by_name(entries, "Timeout")[0].line == 2


class TestMySQLParser:
    def test_sections_prefix_names(self):
        entries = MySQLParser().parse_text("[mysqld]\ndatadir = /var/lib/mysql\n")
        assert entries[0].name == "mysqld/datadir"
        assert entries[0].section == "mysqld"

    def test_dash_normalisation(self):
        entries = MySQLParser().parse_text("[mysqld]\nskip-networking\n")
        assert entries[0].name == "mysqld/skip_networking"
        assert entries[0].value == "ON"

    def test_bare_flag_value(self):
        entries = MySQLParser().parse_text("[mysqldump]\nquick\n")
        assert entries[0].value == "ON"

    def test_comments_both_styles(self):
        entries = MySQLParser().parse_text("# a\n; b\n[mysqld]\nport = 3306 # inline\n")
        assert len(entries) == 1
        assert entries[0].value == "3306"

    def test_empty_key_raises(self):
        with pytest.raises(ConfigParseError):
            MySQLParser().parse_text("[mysqld]\n= value\n")

    def test_no_section_entries(self):
        entries = MySQLParser().parse_text("user = mysql\n")
        assert entries[0].name == "user"
        assert entries[0].section is None

    def test_case_normalisation(self):
        entries = MySQLParser().parse_text("[MYSQLD]\nPort = 3306\n")
        assert entries[0].name == "mysqld/port"


class TestPHPIniParser:
    def test_directive_parsing(self):
        entries = PHPIniParser().parse_text("[PHP]\nmemory_limit = 128M\n")
        assert entries[0].name == "memory_limit"
        assert entries[0].value == "128M"
        assert entries[0].section == "PHP"

    def test_section_not_in_name(self):
        entries = PHPIniParser().parse_text("[Session]\nsession.save_path = /tmp\n")
        assert entries[0].name == "session.save_path"

    def test_semicolon_comments(self):
        entries = PHPIniParser().parse_text("; note\nengine = On ; tail\n")
        assert len(entries) == 1 and entries[0].value == "On"

    def test_missing_equals_raises(self):
        with pytest.raises(ConfigParseError):
            PHPIniParser().parse_text("engine On\n")

    def test_empty_value_allowed(self):
        entries = PHPIniParser().parse_text("error_log =\n")
        assert entries[0].value == ""

    def test_lowercase_names(self):
        entries = PHPIniParser().parse_text("Memory_Limit = 1M\n")
        assert entries[0].name == "memory_limit"


class TestSSHDParser:
    def test_keyword_lines(self):
        entries = SSHDParser().parse_text("Port 22\nPermitRootLogin no\n")
        assert entries[0].name == "Port" and entries[0].value == "22"

    def test_keyword_case_canonicalised(self):
        entries = SSHDParser().parse_text("port 2222\n")
        assert entries[0].name == "Port"

    def test_match_block_scoping(self):
        text = "PasswordAuthentication no\nMatch User deploy\nPasswordAuthentication yes\n"
        entries = SSHDParser().parse_text(text)
        names = [e.name for e in entries]
        assert "PasswordAuthentication" in names
        assert "Match/PasswordAuthentication" in names

    def test_repeated_hostkeys(self):
        text = "HostKey /etc/ssh/a\nHostKey /etc/ssh/b\n"
        entries = SSHDParser().parse_text(text)
        assert [e.occurrence for e in entries] == [0, 1]

    def test_keyword_without_value(self):
        entries = SSHDParser().parse_text("UsePAM\n")
        assert entries[0].value == ""


class TestKeyValueParser:
    def test_equals_colon_space(self):
        parser = KeyValueParser(app="custom")
        for text in ("a = 1\n", "a: 1\n", "a 1\n"):
            entries = parser.parse_text(text)
            assert entries[0].name == "a" and entries[0].value == "1"
            assert entries[0].app == "custom"

    def test_value_free_line(self):
        entries = KeyValueParser().parse_text("flag\n")
        assert entries[0].name == "flag" and entries[0].value == ""


class TestParserRegistry:
    def test_default_registry_covers_studied_apps(self):
        registry = default_registry()
        assert set(registry.known_apps()) == {"apache", "mysql", "php", "sshd"}

    def test_fallback_to_generic(self):
        registry = default_registry()
        entries = registry.parse("redis", "maxmemory 1gb\n")
        assert entries[0].app == "redis"

    def test_strict_registry_raises(self):
        registry = ParserRegistry(fallback_to_generic=False)
        with pytest.raises(KeyError):
            registry.get("unknown")

    def test_register_without_name_raises(self):
        registry = ParserRegistry()
        with pytest.raises(ValueError):
            registry.register(KeyValueParser(app=""))

    def test_source_path_stamped(self):
        registry = default_registry()
        entries = registry.parse("php", "engine = On\n", source_path="/etc/php.ini")
        assert entries[0].source_path == "/etc/php.ini"


class TestStripComment:
    """Quote-aware comment stripping (regression: quoted '#' kept)."""

    from repro.parsers.base import ConfigParser
    strip = staticmethod(ConfigParser.strip_comment)

    def test_plain_comment_stripped(self):
        assert self.strip("Listen 80  # default port") == "Listen 80"

    def test_full_line_comment(self):
        assert self.strip("# nothing here") == ""

    def test_marker_inside_double_quotes_kept(self):
        line = 'CustomLog "/var/log/a#b.log" combined'
        assert self.strip(line) == line

    def test_marker_inside_single_quotes_kept(self):
        line = "ErrorLog '/var/log/err#or.log'"
        assert self.strip(line) == line

    def test_comment_after_closing_quote_stripped(self):
        assert (
            self.strip('CustomLog "/var/log/a#b.log" combined # comment')
            == 'CustomLog "/var/log/a#b.log" combined'
        )

    def test_unterminated_quote_disarms_markers(self):
        line = 'DocumentRoot "/var/www # half-open'
        assert self.strip(line) == line

    def test_alternate_markers(self):
        assert self.strip("key = value ; note", markers=("#", ";")) == "key = value"
        assert (
            self.strip('path = "a;b" ; note', markers=("#", ";")) == 'path = "a;b"'
        )

    def test_no_comment_trailing_space_trimmed(self):
        assert self.strip("Listen 80   ") == "Listen 80"

    def test_apache_parser_keeps_quoted_hash(self):
        entries = ApacheParser().parse_text(
            'CustomLog "/var/log/httpd/access#main.log" combined\n'
        )
        values = [e.value for e in by_name(entries, "CustomLog")]
        assert values == ["/var/log/httpd/access#main.log combined"]

    def test_mysql_parser_keeps_quoted_semicolon(self):
        entries = MySQLParser().parse_text(
            '[mysqld]\ninit_connect = "SET NAMES utf8; SET autocommit=0"\n'
        )
        values = [e.value for e in by_name(entries, "mysqld/init_connect")]
        assert values == ["SET NAMES utf8; SET autocommit=0"]
