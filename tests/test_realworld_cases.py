"""Integration tests for the ten Table 9 real-world cases."""

import pytest

from repro.corpus.realworld import real_world_cases


@pytest.fixture(scope="module")
def case_setup(request):
    from repro.core.pipeline import EnCore
    from repro.corpus.generator import Ec2CorpusGenerator

    images = Ec2CorpusGenerator(seed=3).generate(61)
    encore = EnCore()
    encore.train(images[:60])
    return encore, images[60]


class TestCaseDefinitions:
    def test_ten_cases(self):
        cases = real_world_cases()
        assert len(cases) == 10
        assert [c.case_id for c in cases] == list(range(1, 11))

    def test_info_classes(self):
        infos = {c.info for c in real_world_cases()}
        assert infos <= {"Env", "Corr", "Env + Corr"}

    def test_only_case8_expected_missed(self):
        missed = [c.case_id for c in real_world_cases() if not c.expected_detected]
        assert missed == [8]

    def test_inject_copies(self, case_setup):
        _, held = case_setup
        case = real_world_cases()[0]
        broken = case.inject(held)
        assert broken.image_id != held.image_id
        assert held.config_file("apache").text != broken.config_file("apache").text \
            or held.fs.file_list() != broken.fs.file_list()


@pytest.mark.parametrize("case", real_world_cases(), ids=lambda c: f"case{c.case_id}")
def test_case_detection_matches_paper(case, case_setup):
    """Each case is detected (or, for #8, missed) as the paper reports."""
    encore, held = case_setup
    broken = case.inject(held)
    report = encore.check(broken)
    rank = report.rank_of_attribute(case.target_attribute)
    if case.expected_detected:
        assert rank is not None, f"case {case.case_id} should be detected"
        assert rank <= 8, f"case {case.case_id} ranked too low ({rank})"
    else:
        assert rank is None, f"case {case.case_id} should be missed"


def test_case3_detected_via_ownership_rule(case_setup):
    """Figure 1(b): the violated rule is the ownership template."""
    encore, held = case_setup
    case = next(c for c in real_world_cases() if c.case_id == 3)
    report = encore.check(case.inject(held))
    ownership_warnings = [
        w for w in report.warnings
        if w.rule is not None and w.rule.template_name == "ownership"
        and "datadir" in w.attribute
    ]
    assert ownership_warnings


def test_case2_detected_via_type_column(case_setup):
    """Figure 1(a): detection comes from the extension_dir.type column."""
    encore, held = case_setup
    case = next(c for c in real_world_cases() if c.case_id == 2)
    report = encore.check(case.inject(held))
    assert any(
        w.attribute == "php:extension_dir.type" and w.value == "file"
        for w in report.warnings
    )
