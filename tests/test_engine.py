"""Tests for the stage engine: mergeable datasets, sharding, batch checking.

The engine's contract is *consistency*: any chunking of a corpus, any
worker count, and any merge tree must produce bit-identical datasets,
rules, and reports.  These tests pin that contract from the
``PartialDataset`` algebra up through ``EnCore.train(workers=N)`` and
the CLI.
"""

import pytest

from repro.core.dataset import Dataset, PartialDataset
from repro.core.pipeline import EnCore, EnCoreConfig
from repro.engine import (
    BatchChecker,
    ShardedAssembler,
    StageEngine,
    assembled_system_from_dict,
    assembled_system_to_dict,
    chunked,
    default_chunk_size,
    partial_from_dict,
    partial_to_dict,
    report_from_dict,
    render_stage_graph,
    stage_graph,
)
from repro.engine.artifacts import ShardResult
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry


@pytest.fixture(scope="module")
def assembled(small_corpus):
    """All systems of the small corpus, assembled once (read-only)."""
    return EnCore().assembler.assemble_partial(small_corpus).systems


@pytest.fixture(scope="module")
def serial_model(small_corpus):
    """Serial training baseline on the shared corpus (read-only)."""
    encore = EnCore()
    return encore, encore.train(small_corpus)


class TestChunking:
    def test_chunked_preserves_order(self):
        assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_default_chunk_size_four_chunks_per_worker(self):
        assert default_chunk_size(160, 4) == 10
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestPartialMerge:
    def test_merge_is_associative(self, assembled):
        a = PartialDataset.from_systems(assembled[:13])
        b = PartialDataset.from_systems(assembled[13:31])
        c = PartialDataset.from_systems(assembled[31:])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert left.finalize().fingerprint() == right.finalize().fingerprint()

    def test_merge_matches_serial_accumulation(self, assembled):
        whole = PartialDataset.from_systems(assembled)
        merged = PartialDataset()
        for cut in chunked(assembled, 7):
            merged = merged.merge(PartialDataset.from_systems(cut))
        assert merged == whole
        assert merged.finalize().fingerprint() == whole.finalize().fingerprint()

    def test_extend_matches_merge(self, assembled):
        """The coordinator's in-place fold equals the pure combine."""
        chunks = [PartialDataset.from_systems(c) for c in chunked(assembled, 11)]
        pure = PartialDataset()
        for chunk in chunks:
            pure = pure.merge(chunk)
        folded = PartialDataset()
        for chunk in chunks:
            assert folded.extend(chunk) is folded
        assert folded == pure
        assert folded.finalize().fingerprint() == pure.finalize().fingerprint()

    def test_empty_partial_is_identity(self, assembled):
        partial = PartialDataset.from_systems(assembled[:5])
        assert PartialDataset().merge(partial) == partial
        assert partial.merge(PartialDataset()) == partial

    def test_merge_does_not_mutate_operands(self, assembled):
        a = PartialDataset.from_systems(assembled[:4])
        b = PartialDataset.from_systems(assembled[4:8])
        before = (len(a.systems), {k: dict(v) for k, v in a.value_counts.items()})
        a.merge(b)
        assert len(a.systems) == before[0]
        assert {k: dict(v) for k, v in a.value_counts.items()} == before[1]

    def test_dataset_merge_matches_full_build(self, assembled):
        front = Dataset(assembled[:20])
        back = Dataset(assembled[20:])
        merged = front.merge(back)
        whole = Dataset(assembled)
        assert merged.fingerprint() == whole.fingerprint()
        assert merged.attributes() == whole.attributes()
        for attribute in whole.attributes():
            assert merged.stats(attribute) == whole.stats(attribute)

    def test_fingerprint_sensitive_to_content(self, assembled):
        assert Dataset(assembled[:10]).fingerprint() != Dataset(
            assembled[:11]
        ).fingerprint()


class TestShardedAssembly:
    @pytest.mark.parametrize("workers,chunk_size", [
        (2, None), (4, None), (4, 7), (4, 13), (3, 1),
    ])
    def test_sharded_equals_serial(self, small_corpus, serial_model,
                                   workers, chunk_size):
        _, baseline = serial_model
        encore = EnCore()
        model = encore.train(small_corpus, workers=workers, chunk_size=chunk_size)
        assert model.dataset.fingerprint() == baseline.dataset.fingerprint()
        assert model.rules.to_json() == baseline.rules.to_json()

    def test_worker_metrics_fold_into_coordinator(self, small_corpus):
        parent = get_registry()
        try:
            set_registry(MetricsRegistry())
            EnCore().train(small_corpus)
            serial_totals = (
                get_registry().total("assemble.systems.total"),
                get_registry().total("assemble.attributes.original"),
            )
            set_registry(MetricsRegistry())
            EnCore().train(small_corpus, workers=4)
            sharded = get_registry()
            assert sharded.total("assemble.systems.total") == serial_totals[0]
            assert sharded.total("assemble.attributes.original") == serial_totals[1]
            assert sharded.total("assemble.shards.total") >= 1
        finally:
            set_registry(parent)

    def test_single_image_stays_serial(self, small_corpus):
        encore = EnCore()
        assembler = ShardedAssembler(
            encore.worker_config(), encore.assembler, workers=8
        )
        dataset = assembler.assemble(small_corpus[:1])
        assert len(dataset) == 1

    def test_rejects_bad_worker_count(self, serial_model):
        encore, _ = serial_model
        with pytest.raises(ValueError):
            ShardedAssembler(encore.worker_config(), encore.assembler, workers=0)


class TestBatchChecking:
    def test_parallel_reports_equal_serial(self, small_corpus, serial_model):
        encore, _ = serial_model
        targets = small_corpus[:10]
        serial = [r.to_dict() for r in encore.check_many(targets)]
        parallel = [r.to_dict() for r in encore.check_many(targets, workers=3)]
        assert parallel == serial

    def test_stream_preserves_input_order(self, small_corpus, serial_model):
        encore, _ = serial_model
        targets = small_corpus[:9]
        streamed = list(encore.check_stream(targets, workers=2, chunk_size=2))
        assert [r.image_id for r in streamed] == [t.image_id for t in targets]

    def test_stream_requires_model(self, small_corpus):
        with pytest.raises(RuntimeError):
            list(EnCore().check_stream(small_corpus[:2]))

    def test_empty_stream(self, serial_model):
        encore, _ = serial_model
        assert list(encore.check_stream([], workers=2)) == []

    def test_snapshot_restored_model_checks_in_parallel(
        self, small_corpus, serial_model, tmp_path
    ):
        encore, _ = serial_model
        path = encore.save_model(tmp_path / "model.json")
        fresh = EnCore()
        fresh.load_model(path)
        serial = [r.to_dict() for r in fresh.check_many(small_corpus[:6])]
        parallel = [r.to_dict() for r in fresh.check_many(small_corpus[:6], workers=2)]
        assert parallel == serial

    def test_rejects_bad_worker_count(self, serial_model):
        encore, _ = serial_model
        with pytest.raises(ValueError):
            BatchChecker(encore.worker_config(), {}, workers=0)


class TestIncrementalTraining:
    def test_train_more_equals_full_retrain(self, small_corpus):
        encore = EnCore()
        encore.train(small_corpus[:40])
        incremental = encore.train_more(small_corpus[40:])
        full = EnCore().train(small_corpus)
        assert incremental.dataset.fingerprint() == full.dataset.fingerprint()
        assert incremental.rules.to_json() == full.rules.to_json()

    def test_train_more_sharded(self, small_corpus):
        encore = EnCore()
        encore.train(small_corpus[:40])
        incremental = encore.train_more(small_corpus[40:], workers=2)
        full = EnCore().train(small_corpus)
        assert incremental.rules.to_json() == full.rules.to_json()

    def test_train_more_requires_model(self, small_corpus):
        with pytest.raises(RuntimeError):
            EnCore().train_more(small_corpus[:5])

    def test_train_more_rejects_snapshot_models(
        self, small_corpus, serial_model, tmp_path
    ):
        encore, _ = serial_model
        path = encore.save_model(tmp_path / "model.json")
        fresh = EnCore()
        fresh.load_model(path)
        with pytest.raises(RuntimeError, match="summary"):
            fresh.train_more(small_corpus[:5])


class TestForkGuard:
    def test_programmatic_templates_refuse_to_fork(self, small_corpus):
        from repro.core.templates import RelationKind, RuleTemplate
        from repro.core.types import ConfigType

        encore = EnCore()
        encore.register_template(
            RuleTemplate(
                "code_only", ConfigType.PORT_NUMBER, ConfigType.PORT_NUMBER,
                RelationKind.EQUAL, lambda a, b, s: True,
            )
        )
        with pytest.raises(ValueError, match="process boundaries"):
            encore.train(small_corpus[:4], workers=2)
        # serial training still works
        assert encore.train(small_corpus[:4]).rule_count >= 0

    def test_customization_text_survives_fork(self, small_corpus):
        text = (
            "$$TypeOperator\n"
            "Number : Operator '=='\n"
            "eq (v1,v2): { return v1 == v2 }\n"
            "$$Template\n"
            "[A] == [B] <Number, Number>\n"
        )
        serial = EnCore(EnCoreConfig(customization_text=text)).train(small_corpus[:12])
        sharded = EnCore(EnCoreConfig(customization_text=text)).train(
            small_corpus[:12], workers=2
        )
        assert sharded.rules.to_json() == serial.rules.to_json()


class TestArtifacts:
    def test_assembled_system_round_trip(self, assembled):
        system = assembled[0]
        restored = assembled_system_from_dict(assembled_system_to_dict(system))
        assert restored.image_id == system.image_id
        assert restored.environment_available == system.environment_available
        assert restored.attributes() == system.attributes()
        for attribute in system.attributes():
            assert restored.values_of(attribute) == system.values_of(attribute)
            assert restored.is_augmented(attribute) == system.is_augmented(attribute)

    def test_partial_round_trip(self, assembled):
        partial = PartialDataset.from_systems(assembled[:6])
        restored = partial_from_dict(partial_to_dict(partial))
        assert restored == partial
        assert restored.finalize().fingerprint() == partial.finalize().fingerprint()

    def test_shard_result_round_trip(self, assembled):
        result = ShardResult(
            partial=PartialDataset.from_systems(assembled[:3]),
            metrics={"metrics": []},
            shard_index=2,
        )
        restored = ShardResult.from_dict(result.to_dict())
        assert restored.shard_index == 2
        assert restored.partial == result.partial

    def test_report_round_trip(self, small_corpus, serial_model, held_out_image):
        encore, _ = serial_model
        broken = held_out_image.copy("artifact-rt")
        datadir = None
        for line in broken.config_file("mysql").text.splitlines():
            if line.strip().startswith("datadir"):
                datadir = line.split("=", 1)[1].strip()
        assert datadir
        broken.fs.chown(datadir, owner="root", group="root")
        report = encore.check(broken)
        restored = report_from_dict(report.to_dict())
        assert restored.image_id == report.image_id
        assert [w.kind for w in restored.warnings] == [
            w.kind for w in report.warnings
        ]
        assert [w.attribute for w in restored.warnings] == [
            w.attribute for w in report.warnings
        ]
        for mine, theirs in zip(restored.warnings, report.warnings):
            assert mine.score == pytest.approx(theirs.score, abs=1e-4)
            assert (mine.rule is None) == (theirs.rule is None)


class TestStageGraph:
    def test_figure2_order(self):
        names = [spec.name for spec in stage_graph()]
        assert names == ["parse", "type", "augment", "assemble", "infer", "detect"]

    def test_every_boundary_names_artifacts(self):
        for spec in stage_graph():
            assert spec.consumes and spec.produces
            assert spec.parallelism in {"shardable", "per-image", "global"}

    def test_render_mentions_all_stages(self):
        rendered = render_stage_graph()
        for spec in stage_graph():
            assert spec.name in rendered


class TestStageEngine:
    def test_assemble_then_infer_matches_facade(self, small_corpus, serial_model):
        _, baseline = serial_model
        engine = StageEngine(workers=2)
        dataset = engine.assemble(small_corpus)
        assert dataset.fingerprint() == baseline.dataset.fingerprint()
        result = engine.infer(dataset)
        assert result.rules.to_json() == baseline.rules.to_json()

    def test_train_and_detect(self, small_corpus):
        engine = StageEngine(workers=2)
        model = engine.train(small_corpus[:20])
        assert model.rule_count > 0
        reports = list(engine.detect(small_corpus[:4]))
        assert [r.image_id for r in reports] == [
            i.image_id for i in small_corpus[:4]
        ]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            StageEngine(workers=0)
