"""Tests for rule-guided test generation (the §8 extension)."""

import pytest

from repro.testing.rulegen import RuleGuidedTestGenerator


@pytest.fixture(scope="module")
def generated(trained_encore, held_out_image):
    generator = RuleGuidedTestGenerator(trained_encore.model)
    target = trained_encore.assembler.assemble(held_out_image)
    tests = generator.generate(held_out_image, target, max_tests=40)
    return trained_encore, held_out_image, tests


class TestGeneration:
    def test_produces_tests(self, generated):
        _, _, tests = generated
        assert len(tests) >= 10

    def test_both_mutation_kinds_present(self, generated):
        """EnCore contributes *environment* injections, which ConfErr
        cannot produce — the §8 point."""
        _, _, tests = generated
        kinds = {t.mutation_kind for t in tests}
        assert "environment" in kinds
        assert "config" in kinds

    def test_each_test_targets_a_learned_rule(self, generated):
        encore, _, tests = generated
        learned = {r.key for r in encore.model.rules}
        for test in tests:
            assert test.rule.key in learned

    def test_mutants_are_copies(self, generated):
        _, seed, tests = generated
        for test in tests[:5]:
            assert test.image.image_id != seed.image_id

    def test_max_tests_respected(self, trained_encore, held_out_image):
        generator = RuleGuidedTestGenerator(trained_encore.model)
        target = trained_encore.assembler.assemble(held_out_image)
        tests = generator.generate(held_out_image, target, max_tests=3)
        assert len(tests) == 3

    def test_str_mentions_kind(self, generated):
        _, _, tests = generated
        assert any(t.mutation_kind in str(t) for t in tests)


class TestOracle:
    def test_mutants_violate_their_target_rule(self, generated):
        """The detector flags the targeted rule on (almost) every mutant.

        A small tolerance is allowed: a mutation can knock out the rule's
        applicability (e.g. a desynchronised value changes the column's
        inferred type).
        """
        encore, _, tests = generated
        sample = tests[:20]
        hits = 0
        for test in sample:
            report = encore.check(test.image)
            if any(
                w.rule is not None and w.rule.key == test.rule.key
                for w in report.warnings
            ):
                hits += 1
        assert hits >= len(sample) * 0.7

    def test_environment_mutants_flag_rule(self, generated):
        encore, _, tests = generated
        env_tests = [t for t in tests if t.mutation_kind == "environment"][:5]
        assert env_tests
        for test in env_tests:
            report = encore.check(test.image)
            assert any(
                w.rule is not None and w.rule.key == test.rule.key
                for w in report.warnings
            ), test.description
