"""Smoke tests for the one-shot evaluation runner and CLI entry points."""

from repro.evaluation.summary import main, run_all


class TestSummaryRunner:
    def test_run_all_small(self, capsys):
        """End-to-end sweep at minimum scale (mining skipped for speed)."""
        run_all(training_images=12, wild_images=12, mining=False)
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 8", "Table 9", "Table 10",
                       "Table 11", "Table 12", "Table 13",
                       "all tables regenerated"):
            assert marker in out

    def test_main_arg_parsing(self, capsys):
        rc = main(["--training-images", "12", "--wild-images", "12",
                   "--skip-mining"])
        assert rc == 0
        assert "Table 13" in capsys.readouterr().out


class TestModuleEntryPoints:
    def test_repro_main_importable(self):
        import repro.__main__  # noqa: F401

    def test_evaluation_main_importable(self):
        import repro.evaluation.__main__  # noqa: F401
