"""Tests for the benchmark history store and perf-regression gate."""

import importlib
import json
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.bench import (
    DEFAULT_GATE_METRICS,
    BenchHistory,
    GateMetric,
    gate,
    record_section,
)

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def import_benchmark_module(name):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        return importlib.import_module(name)
    finally:
        sys.path.pop(0)


@pytest.fixture()
def history(tmp_path):
    return BenchHistory(tmp_path / "BENCH_history.jsonl")


def seed_history(history, values, section="parallel_train",
                 metric="serial_total_seconds"):
    for value in values:
        history.append(section, {metric: value}, sha="abc123")


class TestBenchHistory:
    def test_append_and_read_round_trip(self, history):
        record = history.append(
            "parallel_train", {"serial_total_seconds": 1.5},
            sha="deadbeef", config_fingerprint="cfg",
        )
        assert len(record["fingerprint"]) == 64
        (read,) = history.records()
        assert read["payload"]["serial_total_seconds"] == 1.5
        assert read["git_sha"] == "deadbeef"
        assert read["config_fingerprint"] == "cfg"
        assert read["timestamp"]

    def test_missing_file_reads_empty(self, history):
        assert history.records() == []
        assert history.values("parallel_train", "serial_total_seconds") == []

    def test_corrupt_lines_skipped(self, history):
        seed_history(history, [1.0, 2.0])
        with history.path.open("a") as fh:
            fh.write('{"truncated\n')
            fh.write("not json at all\n")
            fh.write('"a bare string"\n')
        assert len(history.records()) == 2

    def test_section_filter(self, history):
        seed_history(history, [1.0])
        seed_history(history, [2.5], section="headline_detection",
                     metric="ratio_min")
        assert len(history.records("parallel_train")) == 1
        assert history.values("headline_detection", "ratio_min") == [2.5]

    def test_records_missing_metric_skipped(self, history):
        history.append("parallel_train", {"unrelated": 1})
        seed_history(history, [3.0])
        assert history.values("parallel_train", "serial_total_seconds") == [3.0]

    def test_dotted_metric_path(self, history):
        history.append("s", {"nested": {"inner": 7}})
        assert history.values("s", "nested.inner") == [7.0]


class TestGateMetric:
    def test_parse_default_direction(self):
        metric = GateMetric.parse("parallel_train.serial_total_seconds")
        assert metric.section == "parallel_train"
        assert metric.metric == "serial_total_seconds"
        assert metric.lower_is_better

    def test_parse_higher_direction_and_dotted_path(self):
        metric = GateMetric.parse("headline_detection.nested.ratio:higher")
        assert metric.metric == "nested.ratio"
        assert not metric.lower_is_better

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            GateMetric.parse("noseparator")
        with pytest.raises(ValueError):
            GateMetric.parse("a.b:sideways")


class TestGate:
    METRIC = (GateMetric("parallel_train", "serial_total_seconds"),)

    def test_flags_synthetic_2x_slowdown(self, history):
        seed_history(history, [1.0, 1.1, 0.95, 1.05, 2.0])
        result = gate(history, window=5, threshold_pct=50.0,
                      metrics=self.METRIC)
        assert not result.ok
        (finding,) = result.regressions
        assert finding.latest == 2.0
        assert "REGRESSED" in finding.describe()

    def test_within_threshold_passes(self, history):
        seed_history(history, [1.0, 1.1, 0.95, 1.05, 1.2])
        assert gate(history, window=5, threshold_pct=50.0,
                    metrics=self.METRIC).ok

    def test_median_absorbs_one_noisy_baseline(self, history):
        # One 10x outlier in the window must not inflate the baseline.
        seed_history(history, [1.0, 10.0, 1.0, 1.0, 1.2])
        result = gate(history, window=5, threshold_pct=50.0,
                      metrics=self.METRIC)
        assert result.ok
        assert result.findings[0].baseline == 1.0

    def test_higher_is_better_direction(self, history):
        metric = (GateMetric("headline_detection", "ratio_min",
                             lower_is_better=False),)
        for value in (2.0, 2.1, 1.9, 0.8):
            history.append("headline_detection", {"ratio_min": value})
        result = gate(history, metrics=metric)
        assert not result.ok
        for value in (2.0,):
            history.append("headline_detection", {"ratio_min": value})
        assert gate(history, metrics=metric).ok

    def test_insufficient_history_never_fails(self, history):
        seed_history(history, [1.0])
        result = gate(history, metrics=DEFAULT_GATE_METRICS)
        assert result.ok
        assert all("insufficient history" in f.describe()
                   for f in result.findings)

    def test_window_bounds_baseline(self, history):
        # Ancient fast records outside the window must not cause alarms.
        seed_history(history, [0.1, 0.1, 0.1, 1.0, 1.1, 0.9, 1.0, 1.2])
        assert gate(history, window=3, threshold_pct=50.0,
                    metrics=self.METRIC).ok


class TestRecordSection:
    def test_stamps_and_appends_history(self, tmp_path):
        headline = tmp_path / "BENCH_headline.json"
        record_section("parallel_train", {"serial_total_seconds": 1.0},
                       path=headline)
        data = json.loads(headline.read_text())
        payload = data["parallel_train"]
        assert "config_fingerprint" in payload
        assert "recorded_at" in payload
        assert "git_sha" in payload
        (record,) = BenchHistory(tmp_path / "BENCH_history.jsonl").records()
        assert record["payload"]["serial_total_seconds"] == 1.0
        assert record["config_fingerprint"] == payload["config_fingerprint"]

    def test_sections_merge_without_clobbering(self, tmp_path):
        headline = tmp_path / "BENCH_headline.json"
        record_section("a", {"x": 1}, path=headline)
        record_section("b", {"y": 2}, path=headline)
        data = json.loads(headline.read_text())
        assert data["a"]["x"] == 1 and data["b"]["y"] == 2

    def test_corrupt_headline_regenerated(self, tmp_path):
        headline = tmp_path / "BENCH_headline.json"
        headline.write_text("{broken")
        record_section("a", {"x": 1}, path=headline)
        assert json.loads(headline.read_text())["a"]["x"] == 1

    def test_existing_stamps_preserved(self, tmp_path):
        record_section("a", {"x": 1, "git_sha": "pinned"},
                       path=tmp_path / "BENCH_headline.json")
        (record,) = BenchHistory(tmp_path / "BENCH_history.jsonl").records()
        assert record["git_sha"] == "pinned"

    def test_export_module_delegates(self, tmp_path):
        export = import_benchmark_module("export")
        headline = tmp_path / "BENCH_headline.json"
        export.record_headline("quick", {"metric": 1.0}, path=headline)
        assert json.loads(headline.read_text())["quick"]["metric"] == 1.0
        assert BenchHistory(tmp_path / "BENCH_history.jsonl").records()


class TestBenchCli:
    def seed(self, tmp_path, values):
        history = BenchHistory(tmp_path / "hist.jsonl")
        seed_history(history, values)
        return str(history.path)

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        path = self.seed(tmp_path, [1.0, 1.1, 0.95, 2.2])
        rc = main(["bench", "diff", "--history", path])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_diff_passes_clean_history(self, tmp_path, capsys):
        path = self.seed(tmp_path, [1.0, 1.1, 0.95, 1.05])
        assert main(["bench", "diff", "--history", path]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_diff_custom_metric_and_threshold(self, tmp_path):
        path = self.seed(tmp_path, [1.0, 1.0, 1.4])
        spec = "parallel_train.serial_total_seconds:lower"
        assert main(["bench", "diff", "--history", path,
                     "--metric", spec, "--threshold", "50"]) == 0
        assert main(["bench", "diff", "--history", path,
                     "--metric", spec, "--threshold", "20"]) == 1

    def test_diff_rejects_bad_metric_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "diff", "--history", self.seed(tmp_path, [1.0]),
                  "--metric", "nodots:sideways"])

    def test_show_lists_records(self, tmp_path, capsys):
        path = self.seed(tmp_path, [1.0, 2.0])
        assert main(["bench", "show", "--history", path]) == 0
        out = capsys.readouterr().out
        assert "parallel_train" in out
        assert "serial_total_seconds=2.0" in out


class TestGateScript:
    def test_gate_script_main(self, tmp_path, capsys):
        gate_mod = import_benchmark_module("gate")
        history = BenchHistory(tmp_path / "hist.jsonl")
        seed_history(history, [1.0, 1.0, 3.0])
        rc = gate_mod.main(["--history", str(history.path)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out
        seed_history(history, [1.0])
        assert gate_mod.main(["--history", str(history.path)]) == 0
